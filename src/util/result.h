#ifndef PRIMA_UTIL_RESULT_H_
#define PRIMA_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace prima::util {

/// A value-or-error pair: either holds a T or a non-ok Status.
/// The PRIMA analogue of arrow::Result / rocksdb's (Status, out-param) pairs.
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error Status. Must not be ok().
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace prima::util

/// Evaluate a Result-returning expression; on error, propagate the Status;
/// on success, move the value into `lhs` (a declaration or assignable).
#define PRIMA_ASSIGN_OR_RETURN(lhs, expr)                    \
  PRIMA_ASSIGN_OR_RETURN_IMPL_(                              \
      PRIMA_RESULT_CONCAT_(_prima_result_, __LINE__), lhs, expr)
#define PRIMA_RESULT_CONCAT_INNER_(a, b) a##b
#define PRIMA_RESULT_CONCAT_(a, b) PRIMA_RESULT_CONCAT_INNER_(a, b)
#define PRIMA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // PRIMA_UTIL_RESULT_H_
