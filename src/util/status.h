#ifndef PRIMA_UTIL_STATUS_H_
#define PRIMA_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace prima::util {

/// Outcome of an operation that can fail. PRIMA never throws across module
/// boundaries; every fallible interface returns a Status (or a Result<T>,
/// see result.h). Modeled after the error-handling idiom of production
/// storage engines.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,         ///< addressed object does not exist
    kAlreadyExists,    ///< unique name / key collision
    kInvalidArgument,  ///< caller passed something malformed
    kCorruption,       ///< on-disk structure failed validation (checksum...)
    kNoSpace,          ///< container exhausted (page, segment, buffer)
    kNotSupported,     ///< feature intentionally absent
    kConstraint,       ///< integrity constraint violated (keys, cardinality)
    kConflict,         ///< lock conflict / serialization failure
    kParseError,       ///< MQL / LDL text could not be parsed
    kIoError,          ///< block device failure
    kAborted,          ///< transaction aborted
  };

  /// Default: success.
  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return Status(Code::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) { return Status(Code::kAlreadyExists, std::move(m)); }
  static Status InvalidArgument(std::string m) { return Status(Code::kInvalidArgument, std::move(m)); }
  static Status Corruption(std::string m) { return Status(Code::kCorruption, std::move(m)); }
  static Status NoSpace(std::string m) { return Status(Code::kNoSpace, std::move(m)); }
  static Status NotSupported(std::string m) { return Status(Code::kNotSupported, std::move(m)); }
  static Status Constraint(std::string m) { return Status(Code::kConstraint, std::move(m)); }
  static Status Conflict(std::string m) { return Status(Code::kConflict, std::move(m)); }
  static Status ParseError(std::string m) { return Status(Code::kParseError, std::move(m)); }
  static Status IoError(std::string m) { return Status(Code::kIoError, std::move(m)); }
  static Status Aborted(std::string m) { return Status(Code::kAborted, std::move(m)); }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsConstraint() const { return code_ == Code::kConstraint; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsParseError() const { return code_ == Code::kParseError; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  /// Transient failures are safe to retry wholesale: the operation lost a
  /// race (lock conflict / serialization failure), not an argument. A caller
  /// that aborts its transaction, backs off, and re-runs the same statements
  /// can expect to succeed once the conflicting transaction finishes —
  /// unlike kConstraint, kParseError, kNotFound, ... which fail the same way
  /// every time. util/retry.h builds the bounded-backoff loop on top of
  /// this predicate.
  bool IsTransient() const { return code_ == Code::kConflict; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" rendering.
  std::string ToString() const;

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_;
  std::string message_;
};

}  // namespace prima::util

/// Propagate a non-ok Status to the caller. Usable in any function that
/// itself returns Status.
#define PRIMA_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::prima::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // PRIMA_UTIL_STATUS_H_
