#ifndef PRIMA_UTIL_RANDOM_H_
#define PRIMA_UTIL_RANDOM_H_

#include <cstdint>

namespace prima::util {

/// Deterministic xorshift128+ generator. All workload generators in tests,
/// examples, and benchmarks seed this explicitly so runs are reproducible
/// bit-for-bit across machines (the paper reports no absolute numbers; we
/// reproduce shapes, and determinism keeps the shapes stable).
class Random {
 public:
  explicit Random(uint64_t seed) {
    s0_ = SplitMix(seed);
    s1_ = SplitMix(s0_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-ish skewed pick in [0, n): rank r chosen with weight 1/(r+1).
  /// Cheap approximation good enough for locality experiments.
  uint64_t Skewed(uint64_t n) {
    const double u = NextDouble();
    const double x = static_cast<double>(n) * u * u;  // quadratic skew
    const auto r = static_cast<uint64_t>(x);
    return r >= n ? n - 1 : r;
  }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace prima::util

#endif  // PRIMA_UTIL_RANDOM_H_
