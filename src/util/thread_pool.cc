#include "util/thread_pool.h"

#include <algorithm>

namespace prima::util {

size_t ThreadPool::DefaultThreads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::SubmitAll(std::vector<std::function<void()>> tasks) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
  }
  work_cv_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace prima::util
