#ifndef PRIMA_UTIL_CRC32_H_
#define PRIMA_UTIL_CRC32_H_

#include <cstdint>

#include "util/slice.h"

namespace prima::util {

/// CRC-32 (IEEE 802.3 polynomial) over a byte range. Used in page headers
/// for fault tolerance: a page read whose stored checksum mismatches is
/// reported as Corruption.
uint32_t Crc32(Slice data);

/// Incremental form: extend a running checksum.
uint32_t Crc32Extend(uint32_t crc, Slice data);

}  // namespace prima::util

#endif  // PRIMA_UTIL_CRC32_H_
