#ifndef PRIMA_UTIL_THREAD_POOL_H_
#define PRIMA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prima::util {

/// Fixed-size worker pool. Substrate for PRIMA's "semantic parallelism":
/// decomposed units of work (DUs) from a single user operation are
/// scheduled here and executed concurrently (paper §4, multi-processor
/// PRIMA emulated with shared-memory threads; see DESIGN.md substitutions).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace prima::util

#endif  // PRIMA_UTIL_THREAD_POOL_H_
