#ifndef PRIMA_UTIL_THREAD_POOL_H_
#define PRIMA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prima::util {

/// Fixed-size worker pool. Substrate for PRIMA's "semantic parallelism":
/// decomposed units of work (DUs) from a single user operation are
/// scheduled here and executed concurrently (paper §4, multi-processor
/// PRIMA emulated with shared-memory threads; see DESIGN.md substitutions).
/// Restart recovery reuses it to fan per-page redo chains out over the
/// cores (RecoveryManager parallel apply phase).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Sizing default for "use the machine": hardware concurrency, floored
  /// at 2 so single-core CI still overlaps compute with blocking I/O.
  static size_t DefaultThreads();

  /// Enqueue a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Enqueue a batch under one lock acquisition and wake every worker —
  /// cheaper than N Submit calls when fanning out many tasks at once.
  void SubmitAll(std::vector<std::function<void()>> tasks);

  /// Block until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace prima::util

#endif  // PRIMA_UTIL_THREAD_POOL_H_
