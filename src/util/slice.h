#ifndef PRIMA_UTIL_SLICE_H_
#define PRIMA_UTIL_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace prima::util {

/// Non-owning view of a byte range. Cheap to copy; never outlives the
/// storage it points into.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const uint8_t* data, size_t size)
      : data_(reinterpret_cast<const char*>(data)), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drop the first n bytes (n <= size()).
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way lexicographic byte comparison.
  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace prima::util

#endif  // PRIMA_UTIL_SLICE_H_
