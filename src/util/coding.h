#ifndef PRIMA_UTIL_CODING_H_
#define PRIMA_UTIL_CODING_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace prima::util {

// ---------------------------------------------------------------------------
// Fixed-width little-endian encodings (page-internal structures).
// ---------------------------------------------------------------------------

void EncodeFixed16(char* dst, uint16_t value);
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint16_t DecodeFixed16(const char* src);
uint32_t DecodeFixed32(const char* src);
uint64_t DecodeFixed64(const char* src);

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// ---------------------------------------------------------------------------
// Varint encodings (record serialization).
// ---------------------------------------------------------------------------

/// Append value in LEB128 (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
/// Append the zig-zag encoding of a signed value.
void PutVarsint64(std::string* dst, int64_t value);
/// Append varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Consume a varint from the front of *input. False on truncation.
bool GetVarint64(Slice* input, uint64_t* value);
bool GetVarsint64(Slice* input, int64_t* value);
bool GetLengthPrefixed(Slice* input, Slice* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

// ---------------------------------------------------------------------------
// Order-preserving key encodings (B*-tree / grid-file composite keys).
// memcmp() on the encoded form sorts exactly like the typed values.
// ---------------------------------------------------------------------------

/// Signed integer: bias the sign bit, store big-endian.
void PutKeyInt64(std::string* dst, int64_t value);
/// IEEE double with total order (negatives flipped entirely).
void PutKeyDouble(std::string* dst, double value);
/// Byte string, terminated with 0x00 0x01 and 0x00 escaped as 0x00 0xFF so
/// prefixes sort before extensions and embedded NULs stay ordered.
void PutKeyString(std::string* dst, Slice value);
/// Booleans as one byte.
void PutKeyBool(std::string* dst, bool value);

bool GetKeyInt64(Slice* input, int64_t* value);
bool GetKeyDouble(Slice* input, double* value);
bool GetKeyString(Slice* input, std::string* value);
bool GetKeyBool(Slice* input, bool* value);

}  // namespace prima::util

#endif  // PRIMA_UTIL_CODING_H_
