#include "util/coding.h"

#include <cstring>

namespace prima::util {

void EncodeFixed16(char* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}
void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}
void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}
uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}
void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}
void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarsint64(std::string* dst, int64_t value) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint64(dst, zigzag);
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const auto byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7F) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarsint64(Slice* input, int64_t* value) {
  uint64_t zigzag;
  if (!GetVarint64(input, &zigzag)) return false;
  *value = static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  return true;
}

bool GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = Slice(input->data(), static_cast<size_t>(len));
  input->RemovePrefix(static_cast<size_t>(len));
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < sizeof(uint32_t)) return false;
  *value = DecodeFixed32(input->data());
  input->RemovePrefix(sizeof(uint32_t));
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < sizeof(uint64_t)) return false;
  *value = DecodeFixed64(input->data());
  input->RemovePrefix(sizeof(uint64_t));
  return true;
}

namespace {
void AppendBigEndian64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  dst->append(buf, 8);
}

bool ReadBigEndian64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r = (r << 8) | static_cast<unsigned char>((*input)[i]);
  }
  input->RemovePrefix(8);
  *v = r;
  return true;
}
}  // namespace

void PutKeyInt64(std::string* dst, int64_t value) {
  AppendBigEndian64(dst, static_cast<uint64_t>(value) ^ (1ull << 63));
}

bool GetKeyInt64(Slice* input, int64_t* value) {
  uint64_t raw;
  if (!ReadBigEndian64(input, &raw)) return false;
  *value = static_cast<int64_t>(raw ^ (1ull << 63));
  return true;
}

void PutKeyDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  // Positive numbers: flip the sign bit. Negative: flip all bits.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits ^= (1ull << 63);
  }
  AppendBigEndian64(dst, bits);
}

bool GetKeyDouble(Slice* input, double* value) {
  uint64_t bits;
  if (!ReadBigEndian64(input, &bits)) return false;
  if (bits & (1ull << 63)) {
    bits ^= (1ull << 63);
  } else {
    bits = ~bits;
  }
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

void PutKeyString(std::string* dst, Slice value) {
  for (size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    if (c == '\x00') {
      dst->push_back('\x00');
      dst->push_back('\xFF');
    } else {
      dst->push_back(c);
    }
  }
  dst->push_back('\x00');
  dst->push_back('\x01');
}

bool GetKeyString(Slice* input, std::string* value) {
  value->clear();
  while (input->size() >= 2) {
    const char c = (*input)[0];
    if (c == '\x00') {
      const char next = (*input)[1];
      input->RemovePrefix(2);
      if (next == '\x01') return true;       // terminator
      if (next == '\xFF') {
        value->push_back('\x00');            // escaped NUL
        continue;
      }
      return false;                          // malformed escape
    }
    value->push_back(c);
    input->RemovePrefix(1);
  }
  return false;
}

void PutKeyBool(std::string* dst, bool value) {
  dst->push_back(value ? '\x01' : '\x00');
}

bool GetKeyBool(Slice* input, bool* value) {
  if (input->empty()) return false;
  *value = (*input)[0] != '\x00';
  input->RemovePrefix(1);
  return true;
}

}  // namespace prima::util
