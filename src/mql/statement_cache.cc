#include "mql/statement_cache.h"

namespace prima::mql {

std::shared_ptr<const CachedStatement> StatementCache::Lookup(
    const std::string& text, uint64_t schema_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(text);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second.entry->schema_version != schema_version) {
    // Compiled against a catalog that DDL has since changed; the plan (and
    // even the resolved structure) may chase dropped ids. Drop it — the
    // caller recompiles and republishes.
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

void StatementCache::Insert(const std::string& text,
                            std::shared_ptr<const CachedStatement> entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(text);
  if (it != map_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(text);
  map_.emplace(text, Slot{std::move(entry), lru_.begin()});
}

size_t StatementCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace prima::mql
