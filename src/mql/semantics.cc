#include "mql/semantics.h"

#include <set>

#include "mql/parser.h"

namespace prima::mql {

using access::AtomTypeDef;
using access::AtomTypeId;
using util::Result;
using util::Status;

namespace {
void CollectTypes(const ResolvedNode& node, std::vector<AtomTypeId>* out) {
  out->push_back(node.type);
  for (const auto& c : node.children) CollectTypes(c, out);
}
void CollectNames(const ResolvedNode& node, std::vector<std::string>* out) {
  out->push_back(node.name);
  for (const auto& c : node.children) CollectNames(c, out);
}
const ResolvedNode* FindNodeRec(const ResolvedNode& node,
                                const std::string& name) {
  if (node.name == name) return &node;
  for (const auto& c : node.children) {
    const ResolvedNode* f = FindNodeRec(c, name);
    if (f != nullptr) return f;
  }
  return nullptr;
}
size_t CountNodes(const ResolvedNode& node) {
  size_t n = 1;
  for (const auto& c : node.children) n += CountNodes(c);
  return n;
}
/// Component names must be unique so WHERE/SELECT references are
/// unambiguous; a type reached twice gets a "_k" suffix.
void DisambiguateNames(ResolvedNode* node, std::set<std::string>* seen) {
  std::string name = node->name;
  int k = 2;
  while (seen->count(name) != 0) {
    name = node->name + "_" + std::to_string(k++);
  }
  node->name = name;
  seen->insert(name);
  for (auto& c : node->children) DisambiguateNames(&c, seen);
}
}  // namespace

std::vector<AtomTypeId> ResolvedStructure::AllTypes() const {
  std::vector<AtomTypeId> out;
  CollectTypes(root, &out);
  return out;
}

std::vector<std::string> ResolvedStructure::AllNames() const {
  std::vector<std::string> out;
  CollectNames(root, &out);
  return out;
}

const ResolvedNode* ResolvedStructure::FindNode(const std::string& name) const {
  return FindNodeRec(root, name);
}

size_t ResolvedStructure::NodeCount() const { return CountNodes(root); }

Result<uint16_t> SemanticAnalyzer::LinkAttr(const AtomTypeDef& parent,
                                            AtomTypeId child,
                                            const std::string& via) const {
  if (!via.empty()) {
    const access::AttributeDef* a = parent.FindAttr(via);
    if (a == nullptr) {
      return Status::InvalidArgument("unknown association attribute " +
                                     parent.name + "." + via);
    }
    if (!a->type.IsAssociation()) {
      return Status::InvalidArgument(parent.name + "." + via +
                                     " is not a REFERENCE attribute");
    }
    const access::TypeDesc* ref = a->type.ReferenceDesc();
    if (ref->ref_type_id != child) {
      return Status::InvalidArgument(parent.name + "." + via +
                                     " does not associate the requested type");
    }
    return a->id;
  }
  std::vector<uint16_t> candidates;
  for (const auto& a : parent.attrs) {
    if (!a.type.IsAssociation()) continue;
    const access::TypeDesc* ref = a.type.ReferenceDesc();
    if (ref->ref_type_id == child) candidates.push_back(a.id);
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no association from " + parent.name +
                                   " to the requested component type");
  }
  if (candidates.size() > 1) {
    return Status::InvalidArgument(
        "ambiguous association from " + parent.name +
        "; disambiguate with " + parent.name + ".<attr>");
  }
  return candidates[0];
}

Result<ResolvedNode> SemanticAnalyzer::ResolveChain(
    const std::vector<StructureNode>& chain, size_t index, int depth,
    bool* recursive, uint16_t* rec_attr, std::string* molecule_name) const {
  if (depth > 16) {
    return Status::InvalidArgument("molecule type nesting too deep");
  }
  const StructureNode& sn = chain[index];
  ResolvedNode node;

  // Component may be a predefined molecule type — splice its structure.
  const AtomTypeDef* atom_type = catalog_->FindAtomType(sn.name);
  if (atom_type == nullptr) {
    const access::MoleculeTypeDef* mol = catalog_->FindMoleculeType(sn.name);
    if (mol == nullptr) {
      return Status::InvalidArgument("unknown atom or molecule type " + sn.name);
    }
    PRIMA_ASSIGN_OR_RETURN(FromClause sub_from, ParseFromText(mol->from_text));
    PRIMA_ASSIGN_OR_RETURN(ResolvedStructure sub,
                           ResolveInternal(sub_from, depth + 1));
    if (sub.recursive) {
      if (index != 0 || chain.size() != 1 || !sn.branches.empty()) {
        return Status::InvalidArgument(
            "recursive molecule type " + sn.name +
            " can only be used as the whole FROM clause");
      }
      *recursive = true;
      *rec_attr = sub.rec_attr;
    }
    if (index == 0) *molecule_name = sn.name;
    node = std::move(sub.root);
  } else {
    node.type = atom_type->id;
    node.name = sn.name;
  }

  const AtomTypeDef* node_type = catalog_->GetAtomType(node.type);

  // Branches fan out from this component.
  for (const auto& branch : sn.branches) {
    PRIMA_ASSIGN_OR_RETURN(
        ResolvedNode child,
        ResolveChain(branch, 0, depth, recursive, rec_attr, molecule_name));
    PRIMA_ASSIGN_OR_RETURN(child.via_attr,
                           LinkAttr(*node_type, child.type, ""));
    node.children.push_back(std::move(child));
  }

  // Chain continuation: the next component is a child of this one, linked
  // via this component's `.attr` notation when present.
  if (index + 1 < chain.size()) {
    PRIMA_ASSIGN_OR_RETURN(
        ResolvedNode child,
        ResolveChain(chain, index + 1, depth, recursive, rec_attr,
                     molecule_name));
    PRIMA_ASSIGN_OR_RETURN(child.via_attr,
                           LinkAttr(*node_type, child.type, sn.via_attr));
    node.children.push_back(std::move(child));
  } else if (!sn.via_attr.empty() && sn.branches.empty() &&
             chain.size() == 1) {
    return Status::InvalidArgument("dangling association notation " + sn.name +
                                   "." + sn.via_attr);
  }
  return node;
}

Result<ResolvedStructure> SemanticAnalyzer::ResolveInternal(
    const FromClause& from, int depth) const {
  if (from.chain.empty()) {
    return Status::InvalidArgument("empty FROM clause");
  }
  ResolvedStructure out;

  // Recursive structures: the canonical form is `X.attr - X (recursive)`.
  if (from.recursive && from.chain.size() == 2 &&
      catalog_->FindAtomType(from.chain[0].name) != nullptr) {
    const StructureNode& first = from.chain[0];
    const StructureNode& second = from.chain[1];
    if (first.name != second.name) {
      return Status::InvalidArgument(
          "recursive structure must relate a type to itself");
    }
    const AtomTypeDef* type = catalog_->FindAtomType(first.name);
    out.root.type = type->id;
    out.root.name = first.name;
    out.recursive = true;
    PRIMA_ASSIGN_OR_RETURN(out.rec_attr,
                           LinkAttr(*type, type->id, first.via_attr));
    return out;
  }

  bool recursive = false;
  uint16_t rec_attr = 0;
  std::string molecule_name;
  PRIMA_ASSIGN_OR_RETURN(
      out.root,
      ResolveChain(from.chain, 0, depth, &recursive, &rec_attr, &molecule_name));
  out.recursive = recursive || from.recursive;
  out.rec_attr = rec_attr;
  out.molecule_name = molecule_name;
  if (out.recursive && out.rec_attr == 0 && from.recursive) {
    // `X.attr - X (recursive)` handled above; a spliced molecule type
    // carries its own rec_attr. Anything else is malformed.
    return Status::InvalidArgument("malformed recursive structure");
  }
  std::set<std::string> seen;
  DisambiguateNames(&out.root, &seen);
  return out;
}

Result<ResolvedStructure> SemanticAnalyzer::Resolve(
    const FromClause& from) const {
  return ResolveInternal(from, 0);
}

}  // namespace prima::mql
