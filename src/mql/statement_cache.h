#ifndef PRIMA_MQL_STATEMENT_CACHE_H_
#define PRIMA_MQL_STATEMENT_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "mql/ast.h"
#include "mql/executor.h"

namespace prima::mql {

/// A one-shot statement, compiled once and shared: the parsed AST plus (for
/// statements with a FROM clause) the prepared query plan. Immutable after
/// insertion — executions across sessions read it concurrently through a
/// shared_ptr, so an eviction never pulls a statement out from under an
/// execution in flight.
struct CachedStatement {
  /// Catalog::schema_version() at compile time. A lookup under a different
  /// version is a miss: DDL since then may have dropped or replaced a
  /// structure the plan (or the resolved AST) embeds.
  uint64_t schema_version = 0;
  Statement stmt;
  std::optional<QueryPlan> plan;
};

/// Shared, schema-versioned statement cache keyed by MQL text. Sessions
/// consult it on every one-shot Execute/Query, so a client that never calls
/// Prepare — every raw network Execute, for one — still gets the
/// parse-once-plan-once fast path transparently the second time a statement
/// text arrives, from ANY session. Bounded LRU; statements with
/// placeholders and DDL / transaction control are never cached (the former
/// must go through Prepare, the latter parse trivially or invalidate the
/// cache themselves).
class StatementCache {
 public:
  explicit StatementCache(size_t capacity = 256) : capacity_(capacity) {}

  StatementCache(const StatementCache&) = delete;
  StatementCache& operator=(const StatementCache&) = delete;

  /// Statement kinds worth caching: query and DML shapes whose parse +
  /// semantic analysis + planning dominate a repeated round trip.
  static bool Cacheable(Statement::Kind kind) {
    switch (kind) {
      case Statement::Kind::kQuery:
      case Statement::Kind::kInsert:
      case Statement::Kind::kDelete:
      case Statement::Kind::kModify:
      case Statement::Kind::kConnect:
        return true;
      default:
        return false;
    }
  }

  /// The cached compile of `text`, or null on a miss. An entry compiled
  /// under a different schema version is dropped and reported as a miss.
  std::shared_ptr<const CachedStatement> Lookup(const std::string& text,
                                                uint64_t schema_version);

  /// Publish a compiled statement (no-op when capacity is 0). Last writer
  /// wins on a racing double-compile of the same text — both entries are
  /// equivalent.
  void Insert(const std::string& text,
              std::shared_ptr<const CachedStatement> entry);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t size() const;

 private:
  struct Slot {
    std::shared_ptr<const CachedStatement> entry;
    std::list<std::string>::iterator lru_pos;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> map_;
  /// Front = most recently used; back is evicted at capacity.
  std::list<std::string> lru_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_STATEMENT_CACHE_H_
