#include "mql/executor.h"

#include <algorithm>
#include <set>

namespace prima::mql {

using access::Atom;
using access::AtomTypeDef;
using access::AtomTypeId;
using access::CompareOp;
using access::SearchArgument;
using access::SimplePredicate;
using access::StructureDef;
using access::StructureKind;
using access::Tid;
using access::Value;
using util::Result;
using util::Status;

namespace {

std::vector<Tid> RefTargets(const Value& v) {
  std::vector<Tid> out;
  if (v.kind() == Value::Kind::kTid) {
    if (!v.AsTid().IsNull()) out.push_back(v.AsTid());
  } else if (v.kind() == Value::Kind::kList) {
    for (const auto& e : v.elems()) {
      if (e.kind() == Value::Kind::kTid && !e.AsTid().IsNull()) {
        out.push_back(e.AsTid());
      }
    }
  }
  return out;
}

bool CompareSatisfied(CompareOp op, const Value& v, const Value& operand) {
  switch (op) {
    case CompareOp::kIsEmpty:
      return v.is_null() ||
             (v.kind() == Value::Kind::kList && v.elems().empty());
    case CompareOp::kNotEmpty:
      return v.kind() == Value::Kind::kList && !v.elems().empty();
    case CompareOp::kContains:
      return v.Contains(operand);
    default:
      break;
  }
  if (v.is_null()) return false;
  const int c = v.Compare(operand);
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
    default: return false;
  }
}

/// Resolve attr name + record-field names into ids on an atom type.
Result<std::pair<uint16_t, std::vector<uint16_t>>> ResolveAttrOnType(
    const AtomTypeDef& def, const std::vector<std::string>& attrs) {
  const access::AttributeDef* attr = def.FindAttr(attrs[0]);
  if (attr == nullptr) {
    return Status::InvalidArgument("unknown attribute " + def.name + "." +
                                   attrs[0]);
  }
  std::vector<uint16_t> fields;
  const access::TypeDesc* t = &attr->type;
  for (size_t i = 1; i < attrs.size(); ++i) {
    if (t->kind != access::TypeKind::kRecord) {
      return Status::InvalidArgument("attribute path descends into non-RECORD");
    }
    bool found = false;
    for (size_t f = 0; f < t->fields.size(); ++f) {
      if (t->fields[f].name == attrs[i]) {
        fields.push_back(static_cast<uint16_t>(f));
        t = t->fields[f].type.get();
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown RECORD field " + attrs[i]);
    }
  }
  return std::make_pair(attr->id, std::move(fields));
}

const Value* DescendFields(const Value& v, const std::vector<uint16_t>& fields) {
  const Value* cur = &v;
  for (uint16_t f : fields) {
    if (cur->kind() != Value::Kind::kRecord || f >= cur->elems().size()) {
      return nullptr;
    }
    cur = &cur->elems()[f];
  }
  return cur;
}

}  // namespace

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

Status Executor::ExtractRootPreds(const Expr* where,
                                  const ResolvedStructure& structure,
                                  std::vector<RootPred>* out) const {
  if (where == nullptr) return Status::Ok();
  if (where->kind == Expr::Kind::kAnd) {
    for (const auto& child : where->children) {
      PRIMA_RETURN_IF_ERROR(ExtractRootPreds(child.get(), structure, out));
    }
    return Status::Ok();
  }
  if (where->kind != Expr::Kind::kCompare || where->rhs_path.has_value()) {
    return Status::Ok();
  }
  const AttrPath& path = where->lhs;
  // Root-bound: bare attr, explicit root component, or seed level 0.
  bool root_bound =
      (path.component.empty()) ||
      (path.component == structure.root.name) ||
      (path.component == structure.molecule_name && path.level <= 0);
  std::vector<std::string> attrs = path.attrs;
  const AtomTypeDef* def = access_->catalog().GetAtomType(structure.root.type);
  if (!root_bound && path.level < 0 &&
      structure.FindNode(path.component) == nullptr &&
      def->FindAttr(path.component) != nullptr) {
    // `placement.x_coord`: a RECORD attribute of the root, not a component.
    attrs.insert(attrs.begin(), path.component);
    root_bound = true;
  }
  if (!root_bound || path.level > 0) return Status::Ok();
  auto resolved = ResolveAttrOnType(*def, attrs);
  if (!resolved.ok()) return Status::Ok();  // not a root attribute; skip
  RootPred p;
  p.attr = resolved->first;
  p.fields = std::move(resolved->second);
  p.op = where->op;
  p.operand = where->literal;
  p.param = where->param;
  out->push_back(std::move(p));
  return Status::Ok();
}

Result<QueryPlan> Executor::Prepare(const FromClause& from, const Expr* where) {
  QueryPlan plan;
  PRIMA_ASSIGN_OR_RETURN(plan.structure, analyzer_.Resolve(from));
  const AtomTypeDef* root_def =
      access_->catalog().GetAtomType(plan.structure.root.type);

  std::vector<RootPred> preds;
  PRIMA_RETURN_IF_ERROR(ExtractRootPreds(where, plan.structure, &preds));
  // Root predicates embed their operand VALUES into the plan (eq_key,
  // range, grid_dims, root_sarg). Record which statement-parameter slots
  // those operands came from: re-binding one of them invalidates the plan,
  // while params elsewhere in the WHERE never do.
  for (const RootPred& p : preds) {
    if (p.param >= 0) plan.root_param_deps.push_back(p.param);
  }

  // 1. Key lookup: equality predicates covering KEYS_ARE.
  if (!root_def->key_attrs.empty()) {
    std::vector<Value> key_values;
    bool covered = true;
    for (uint16_t k : root_def->key_attrs) {
      bool found = false;
      for (const auto& p : preds) {
        if (p.attr == k && p.fields.empty() && p.op == CompareOp::kEq) {
          Value v = p.operand;
          if (root_def->attrs[k].type.kind == access::TypeKind::kReal &&
              v.kind() == Value::Kind::kInt) {
            v = Value::Real(static_cast<double>(v.AsInt()));
          }
          key_values.push_back(std::move(v));
          found = true;
          break;
        }
      }
      if (!found) {
        covered = false;
        break;
      }
    }
    const StructureDef* key_index =
        access_->catalog().FindStructure(root_def->name + "_key");
    if (covered && key_index != nullptr) {
      plan.root_access = RootAccess::kKeyLookup;
      plan.access_structure_id = key_index->id;
      plan.eq_key = std::move(key_values);
    }
  }

  // 2. Explicit access paths (B*-tree first, then grid).
  if (plan.root_access != RootAccess::kKeyLookup) {
    for (const StructureDef* s :
         access_->catalog().StructuresFor(root_def->id)) {
      if (s->kind == StructureKind::kBTreeAccessPath && !s->attrs.empty()) {
        const uint16_t first_attr = s->attrs[0];
        std::optional<Value> lo, hi;
        bool lo_incl = true, hi_incl = true;
        for (const auto& p : preds) {
          if (p.attr != first_attr || !p.fields.empty()) continue;
          Value v = p.operand;
          if (root_def->attrs[first_attr].type.kind ==
                  access::TypeKind::kReal &&
              v.kind() == Value::Kind::kInt) {
            v = Value::Real(static_cast<double>(v.AsInt()));
          }
          switch (p.op) {
            case CompareOp::kEq:
              lo = v;
              hi = v;
              lo_incl = hi_incl = true;
              break;
            case CompareOp::kGt:
              lo = v;
              lo_incl = false;
              break;
            case CompareOp::kGe:
              lo = v;
              lo_incl = true;
              break;
            case CompareOp::kLt:
              hi = v;
              hi_incl = false;
              break;
            case CompareOp::kLe:
              hi = v;
              hi_incl = true;
              break;
            default:
              break;
          }
        }
        if (lo || hi) {
          plan.root_access = RootAccess::kAccessPath;
          plan.access_structure_id = s->id;
          if (lo) {
            plan.range.start = std::vector<Value>{*lo};
            plan.range.start_inclusive = lo_incl;
          }
          if (hi) {
            plan.range.stop = std::vector<Value>{*hi};
            plan.range.stop_inclusive = hi_incl;
          }
          break;
        }
      } else if (s->kind == StructureKind::kGridAccessPath) {
        std::vector<access::GridDimension> dims(s->attrs.size());
        size_t bounded = 0;
        for (size_t d = 0; d < s->attrs.size(); ++d) {
          bool any = false;
          for (const auto& p : preds) {
            if (p.attr != s->attrs[d] || !p.fields.empty()) continue;
            Value v = p.operand;
            if (root_def->attrs[s->attrs[d]].type.kind ==
                    access::TypeKind::kReal &&
                v.kind() == Value::Kind::kInt) {
              v = Value::Real(static_cast<double>(v.AsInt()));
            }
            switch (p.op) {
              case CompareOp::kEq:
                dims[d].lo = v;
                dims[d].hi = v;
                any = true;
                break;
              case CompareOp::kGt:
                dims[d].lo = v;
                dims[d].lo_inclusive = false;
                any = true;
                break;
              case CompareOp::kGe:
                dims[d].lo = v;
                any = true;
                break;
              case CompareOp::kLt:
                dims[d].hi = v;
                dims[d].hi_inclusive = false;
                any = true;
                break;
              case CompareOp::kLe:
                dims[d].hi = v;
                any = true;
                break;
              default:
                break;
            }
          }
          if (any) ++bounded;
        }
        if (bounded >= 2 || (bounded == 1 && s->attrs.size() == 1)) {
          plan.root_access = RootAccess::kGrid;
          plan.access_structure_id = s->id;
          plan.grid_dims = std::move(dims);
          break;
        }
      }
    }
  }

  // 3. Fallback: atom-type scan with the predicates as a search argument.
  if (plan.root_access == RootAccess::kAtomTypeScan) {
    for (const auto& p : preds) {
      SimplePredicate sp;
      sp.attr = p.attr;
      sp.field_path = p.fields;
      sp.op = p.op;
      sp.operand = p.operand;
      plan.root_sarg.conjuncts.push_back(std::move(sp));
    }
  }

  // Cluster fast path: a cluster whose characteristic type is the root and
  // whose members cover every component type.
  if (!plan.structure.recursive && plan.structure.NodeCount() > 1) {
    std::vector<AtomTypeId> needed = plan.structure.AllTypes();
    needed.erase(needed.begin());
    const StructureDef* cluster =
        access_->FindCoveringCluster(plan.structure.root.type, needed);
    if (cluster != nullptr) {
      plan.use_cluster = true;
      plan.cluster_id = cluster->id;
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Root candidates
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RootSource>> Executor::OpenRootSource(
    const QueryPlan& plan) {
  auto source = std::make_unique<RootSource>();
  source->access_ = access_;
  source->root_type_ = plan.structure.root.type;
  switch (plan.root_access) {
    case RootAccess::kKeyLookup: {
      stats_.key_lookups++;
      source->use_lookup_ = true;
      std::string key;
      for (const Value& v : plan.eq_key) {
        PRIMA_RETURN_IF_ERROR(v.EncodeKeyInto(&key));
      }
      access::BTree* tree = access_->BTreeFor(plan.access_structure_id);
      if (tree == nullptr) {
        // A cached plan outlived its key index (DDL dropped it between
        // plan time and execution); scans guard the same way in Open().
        return Status::NotFound("key index " +
                                std::to_string(plan.access_structure_id) +
                                " no longer exists - re-plan the query");
      }
      PRIMA_ASSIGN_OR_RETURN(auto found, tree->Get(key));
      if (found) {
        util::Slice v(*found);
        uint64_t packed = 0;
        util::GetFixed64(&v, &packed);
        PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(Tid::Unpack(packed)));
        source->lookup_.push_back(std::move(atom));
      }
      return source;
    }
    case RootAccess::kAccessPath: {
      stats_.access_path_scans++;
      source->path_scan_ = std::make_unique<access::BTreeAccessPathScan>(
          access_, plan.access_structure_id, plan.range, true, plan.root_sarg);
      PRIMA_RETURN_IF_ERROR(source->path_scan_->Open());
      return source;
    }
    case RootAccess::kGrid: {
      stats_.grid_scans++;
      source->grid_scan_ = std::make_unique<access::GridAccessPathScan>(
          access_, plan.access_structure_id, plan.grid_dims,
          std::vector<size_t>{}, plan.root_sarg);
      PRIMA_RETURN_IF_ERROR(source->grid_scan_->Open());
      return source;
    }
    case RootAccess::kAtomTypeScan: {
      stats_.atom_type_scans++;
      source->type_scan_ = std::make_unique<access::AtomTypeScan>(
          access_, plan.structure.root.type, plan.root_sarg);
      PRIMA_RETURN_IF_ERROR(source->type_scan_->Open());
      return source;
    }
  }
  return source;
}

Result<std::optional<Atom>> RootSource::NextUnderlying() {
  if (use_lookup_) {
    if (lookup_next_ >= lookup_.size()) return std::optional<Atom>();
    return std::optional<Atom>(std::move(lookup_[lookup_next_++]));
  }
  if (type_scan_ != nullptr) return type_scan_->Next();
  if (path_scan_ != nullptr) return path_scan_->Next();
  if (grid_scan_ != nullptr) return grid_scan_->Next();
  return std::optional<Atom>();
}

Result<std::optional<Atom>> RootSource::NextSnapshot() {
  while (!ghosts_built_) {
    PRIMA_ASSIGN_OR_RETURN(std::optional<Atom> atom, NextUnderlying());
    if (!atom) {
      // Scan drained: collect the ghosts — chained atoms the scan never
      // surfaced. Built only now, so every chain entry installed before the
      // scan passed its atom (install happens before the index write that
      // hides it) is already in place.
      ghosts_built_ = true;
      for (uint64_t packed : access_->versions().ChainedTids(root_type_)) {
        if (yielded_.count(packed) == 0) ghosts_.push_back(packed);
      }
      break;
    }
    // Dedup: a concurrent key change can surface one atom at two index
    // positions; a fixed view owes each atom exactly one yield.
    if (!yielded_.insert(atom->tid.Pack()).second) continue;
    access::VersionStore::Resolution res =
        access_->versions().Resolve(atom->tid, *view_);
    if (res.outcome == access::VersionStore::Outcome::kInvisible) continue;
    if (res.outcome == access::VersionStore::Outcome::kBefore) {
      atom = std::move(*res.before);
    }
    return atom;
  }
  while (ghost_next_ < ghosts_.size()) {
    const Tid tid = Tid::Unpack(ghosts_[ghost_next_++]);
    access::VersionStore::Resolution res =
        access_->versions().Resolve(tid, *view_);
    // kCurrent: the live record was correctly excluded by the scan on its
    // visible value; kInvisible: born after the snapshot. Only a rescued
    // before-image is a candidate (the WHERE still qualifies it downstream).
    if (res.outcome == access::VersionStore::Outcome::kBefore) {
      return std::optional<Atom>(std::move(*res.before));
    }
  }
  return std::optional<Atom>();
}

Result<std::optional<Atom>> RootSource::Next() {
  if (view_ == nullptr) return NextUnderlying();
  return NextSnapshot();
}

Result<std::vector<Atom>> Executor::RootCandidates(const QueryPlan& plan) {
  // The materializing paths (Qualify, semantic parallelism) drain the same
  // incremental source cursors pull from.
  PRIMA_ASSIGN_OR_RETURN(std::unique_ptr<RootSource> source,
                         OpenRootSource(plan));
  std::vector<Atom> out;
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(auto atom, source->Next());
    if (!atom) break;
    out.push_back(std::move(*atom));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

namespace {
void InitGroups(const ResolvedNode& node, Molecule* m) {
  MoleculeGroup g;
  g.component = node.name;
  g.type = node.type;
  m->groups.push_back(std::move(g));
  for (const auto& c : node.children) InitGroups(c, m);
}
}  // namespace

Result<Molecule> Executor::AssembleBfs(const ResolvedStructure& structure,
                                       const Atom& root) {
  Molecule m;
  InitGroups(structure.root, &m);
  m.groups[0].atoms.push_back(root);
  stats_.bfs_assemblies++;

  // Pre-order walk filling child groups from parent groups.
  size_t group_index = 0;
  struct Frame {
    const ResolvedNode* node;
    size_t group;
  };
  std::vector<Frame> order;
  std::function<void(const ResolvedNode&)> collect =
      [&](const ResolvedNode& node) {
        order.push_back({&node, group_index++});
        for (const auto& c : node.children) collect(c);
      };
  collect(structure.root);

  // Map node pointer -> its group index for child lookup.
  for (const Frame& f : order) {
    size_t child_group = f.group;
    for (const auto& child : f.node->children) {
      // The child group is the next pre-order group after the subtrees of
      // earlier siblings; recompute by searching `order`.
      ++child_group;
      for (const Frame& g : order) {
        if (g.node == &child) {
          child_group = g.group;
          break;
        }
      }
      std::set<uint64_t> seen;
      for (const Atom& parent_atom : m.groups[f.group].atoms) {
        for (const Tid& t : RefTargets(parent_atom.attrs[child.via_attr])) {
          if (t.type != child.type) continue;
          if (!seen.insert(t.Pack()).second) continue;
          auto atom_or = access_->GetAtom(t);
          if (!atom_or.ok()) {
            if (atom_or.status().IsNotFound()) continue;
            return atom_or.status();
          }
          m.groups[child_group].atoms.push_back(std::move(*atom_or));
        }
      }
    }
  }
  return m;
}

Result<Molecule> Executor::AssembleRecursive(const ResolvedStructure& structure,
                                             const Atom& root) {
  Molecule m;
  InitGroups(structure.root, &m);
  stats_.bfs_assemblies++;
  std::set<uint64_t> visited;
  std::vector<Tid> level{root.tid};
  visited.insert(root.tid.Pack());
  m.groups[0].atoms.push_back(root);
  m.levels.push_back(level);

  // Stepwise evaluation "going from one level to the next subordinate
  // level" (paper §2.2) with cycle protection.
  while (!level.empty()) {
    std::vector<Tid> next;
    for (const Tid& t : level) {
      const Atom* atom = nullptr;
      for (const Atom& a : m.groups[0].atoms) {
        if (a.tid == t) {
          atom = &a;
          break;
        }
      }
      if (atom == nullptr) continue;
      for (const Tid& child : RefTargets(atom->attrs[structure.rec_attr])) {
        if (!visited.insert(child.Pack()).second) continue;
        next.push_back(child);
      }
    }
    for (const Tid& t : next) {
      PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(t));
      m.groups[0].atoms.push_back(std::move(atom));
    }
    if (next.empty()) break;
    m.levels.push_back(next);
    stats_.recursion_levels++;
    level = std::move(next);
  }
  return m;
}

Result<Molecule> Executor::AssembleFromCluster(const QueryPlan& plan,
                                               const Atom& root) {
  PRIMA_ASSIGN_OR_RETURN(access::ClusterImage image,
                         access_->ReadCluster(plan.cluster_id, root.tid));
  stats_.cluster_assemblies++;
  Molecule m;
  InitGroups(plan.structure.root, &m);
  m.groups[0].atoms.push_back(image.characteristic);
  for (auto& [type, atoms] : image.groups) {
    for (auto& g : m.groups) {
      if (g.type == type && g.component != plan.structure.root.name) {
        for (const Atom& a : atoms) g.atoms.push_back(a);
        break;
      }
    }
  }
  return m;
}

Result<Molecule> Executor::Assemble(const QueryPlan& plan, const Atom& root) {
  stats_.molecules_built++;
  if (plan.structure.recursive) {
    return AssembleRecursive(plan.structure, root);
  }
  // Under a read view, always chase associations: cluster images are
  // refreshed by deferred maintenance drains and carry no version chains,
  // so only per-atom reads can be resolved against the view.
  if (plan.use_cluster && access::CurrentReadView() == nullptr) {
    return AssembleFromCluster(plan, root);
  }
  return AssembleBfs(plan.structure, root);
}

// ---------------------------------------------------------------------------
// Predicate evaluation
// ---------------------------------------------------------------------------

Result<std::vector<Value>> Executor::PathValues(
    const Molecule& molecule, const AttrPath& path,
    const std::map<std::string, const Atom*>& bindings,
    const std::string& default_component) const {
  // Level-indexed (seed) reference: molecule(level).attr
  if (path.level >= 0) {
    std::vector<Value> out;
    if (static_cast<size_t>(path.level) >= molecule.levels.size()) return out;
    const MoleculeGroup& g = molecule.groups[0];
    const AtomTypeDef* def = access_->catalog().GetAtomType(g.type);
    PRIMA_ASSIGN_OR_RETURN(auto resolved,
                           ResolveAttrOnType(*def, path.attrs));
    for (const Tid& t : molecule.levels[path.level]) {
      for (const Atom& a : g.atoms) {
        if (a.tid == t) {
          const Value* v = DescendFields(a.attrs[resolved.first],
                                         resolved.second);
          if (v != nullptr) out.push_back(*v);
          break;
        }
      }
    }
    return out;
  }

  // Find the component group (bare attrs bind to the default component,
  // which is the root unless a qualified projection rescopes them).
  const MoleculeGroup* group = nullptr;
  if (path.component.empty()) {
    group = default_component.empty()
                ? &molecule.groups[0]
                : molecule.FindGroup(default_component);
    if (group == nullptr) group = &molecule.groups[0];
  } else {
    group = molecule.FindGroup(path.component);
    if (group == nullptr) {
      // `placement.x_coord`: what parsed as a component name is actually a
      // RECORD attribute of the default component. Rebind.
      AttrPath rebased;
      rebased.attrs.reserve(path.attrs.size() + 1);
      rebased.attrs.push_back(path.component);
      rebased.attrs.insert(rebased.attrs.end(), path.attrs.begin(),
                           path.attrs.end());
      return PathValues(molecule, rebased, bindings, default_component);
    }
  }
  const AtomTypeDef* def = access_->catalog().GetAtomType(group->type);
  PRIMA_ASSIGN_OR_RETURN(auto resolved, ResolveAttrOnType(*def, path.attrs));

  std::vector<Value> out;
  // A quantifier binding narrows the component to one atom.
  auto bound = bindings.find(group->component);
  if (bound != bindings.end()) {
    const Value* v =
        DescendFields(bound->second->attrs[resolved.first], resolved.second);
    if (v != nullptr) out.push_back(*v);
    return out;
  }
  for (const Atom& a : group->atoms) {
    const Value* v = DescendFields(a.attrs[resolved.first], resolved.second);
    if (v != nullptr) out.push_back(*v);
  }
  return out;
}

Result<bool> Executor::Eval(
    const Molecule& molecule, const Expr& expr,
    const std::map<std::string, const Atom*>& bindings,
    const std::string& default_component) const {
  switch (expr.kind) {
    case Expr::Kind::kAnd: {
      for (const auto& c : expr.children) {
        PRIMA_ASSIGN_OR_RETURN(const bool ok,
                               Eval(molecule, *c, bindings, default_component));
        if (!ok) return false;
      }
      return true;
    }
    case Expr::Kind::kOr: {
      for (const auto& c : expr.children) {
        PRIMA_ASSIGN_OR_RETURN(const bool ok,
                               Eval(molecule, *c, bindings, default_component));
        if (ok) return true;
      }
      return false;
    }
    case Expr::Kind::kNot: {
      PRIMA_ASSIGN_OR_RETURN(
          const bool ok,
          Eval(molecule, *expr.children[0], bindings, default_component));
      return !ok;
    }
    case Expr::Kind::kQuantifier: {
      const MoleculeGroup* group = molecule.FindGroup(expr.quant_component);
      if (group == nullptr) {
        return Status::InvalidArgument("unknown component " +
                                       expr.quant_component +
                                       " in quantifier");
      }
      uint32_t satisfied = 0;
      for (const Atom& a : group->atoms) {
        auto scoped = bindings;
        scoped[group->component] = &a;
        PRIMA_ASSIGN_OR_RETURN(
            const bool ok,
            Eval(molecule, *expr.quant_body, scoped, group->component));
        if (ok) ++satisfied;
      }
      switch (expr.quant) {
        case Expr::Quant::kExists:
          return satisfied >= 1;
        case Expr::Quant::kExistsAtLeast:
          return satisfied >= expr.quant_count;
        case Expr::Quant::kForAll:
          return satisfied == group->atoms.size();
      }
      return false;
    }
    case Expr::Kind::kCompare: {
      PRIMA_ASSIGN_OR_RETURN(
          std::vector<Value> lhs,
          PathValues(molecule, expr.lhs, bindings, default_component));
      if (expr.rhs_path.has_value()) {
        PRIMA_ASSIGN_OR_RETURN(
            std::vector<Value> rhs,
            PathValues(molecule, *expr.rhs_path, bindings, default_component));
        for (const Value& l : lhs) {
          for (const Value& r : rhs) {
            if (CompareSatisfied(expr.op, l, r)) return true;
          }
        }
        return false;
      }
      // EMPTY tests must also hold for attributes that decode to null, and
      // an atom whose repeating group is absent counts as empty.
      for (const Value& l : lhs) {
        if (CompareSatisfied(expr.op, l, expr.literal)) return true;
      }
      if (lhs.empty() && expr.op == CompareOp::kIsEmpty) return true;
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

Result<Molecule> Executor::Project(const Query& query, const QueryPlan& plan,
                                   Molecule molecule) {
  if (query.select.size() == 1 &&
      query.select[0].kind == ProjItem::Kind::kAll) {
    return molecule;
  }
  struct Directive {
    bool whole = false;
    std::set<uint16_t> attrs;
    const ProjItem* qualified = nullptr;
  };
  std::map<std::string, Directive> directives;

  const AtomTypeDef* root_def =
      access_->catalog().GetAtomType(plan.structure.root.type);
  for (const ProjItem& item : query.select) {
    switch (item.kind) {
      case ProjItem::Kind::kAll:
        for (const auto& g : molecule.groups) directives[g.component].whole = true;
        break;
      case ProjItem::Kind::kComponent: {
        if (molecule.FindGroup(item.component) != nullptr) {
          directives[item.component].whole = true;
        } else {
          // Bare identifier that is actually a root attribute.
          PRIMA_ASSIGN_OR_RETURN(
              auto resolved, ResolveAttrOnType(*root_def, {item.component}));
          directives[molecule.groups[0].component].attrs.insert(resolved.first);
        }
        break;
      }
      case ProjItem::Kind::kAttr: {
        const MoleculeGroup* group =
            item.path.component.empty()
                ? &molecule.groups[0]
                : molecule.FindGroup(item.path.component);
        if (group == nullptr) {
          return Status::InvalidArgument("unknown component " +
                                         item.path.component);
        }
        const AtomTypeDef* def = access_->catalog().GetAtomType(group->type);
        PRIMA_ASSIGN_OR_RETURN(auto resolved,
                               ResolveAttrOnType(*def, {item.path.attrs[0]}));
        directives[group->component].attrs.insert(resolved.first);
        break;
      }
      case ProjItem::Kind::kQualified: {
        if (molecule.FindGroup(item.component) == nullptr) {
          return Status::InvalidArgument("unknown component " + item.component);
        }
        directives[item.component].qualified = &item;
        break;
      }
    }
  }

  Molecule out;
  out.levels = molecule.levels;
  for (MoleculeGroup& g : molecule.groups) {
    auto it = directives.find(g.component);
    if (it == directives.end()) continue;
    const Directive& d = it->second;
    MoleculeGroup ng;
    ng.component = g.component;
    ng.type = g.type;
    const AtomTypeDef* def = access_->catalog().GetAtomType(g.type);
    if (d.qualified != nullptr) {
      // Qualified projection: per-atom qualification + attribute projection.
      std::set<uint16_t> keep;
      for (const std::string& attr_name : d.qualified->attrs) {
        PRIMA_ASSIGN_OR_RETURN(auto resolved,
                               ResolveAttrOnType(*def, {attr_name}));
        keep.insert(resolved.first);
      }
      for (Atom& a : g.atoms) {
        if (d.qualified->qualification != nullptr) {
          std::map<std::string, const Atom*> binding{{g.component, &a}};
          PRIMA_ASSIGN_OR_RETURN(
              const bool ok, Eval(molecule, *d.qualified->qualification,
                                  binding, g.component));
          if (!ok) continue;
        }
        Atom projected = a;
        if (!keep.empty()) {
          for (size_t i = 0; i < projected.attrs.size(); ++i) {
            if (keep.count(static_cast<uint16_t>(i)) == 0 &&
                i != def->identifier_attr) {
              projected.attrs[i] = Value::Null();
            }
          }
        }
        ng.atoms.push_back(std::move(projected));
      }
    } else if (d.whole) {
      ng.atoms = std::move(g.atoms);
    } else {
      for (Atom& a : g.atoms) {
        Atom projected = a;
        for (size_t i = 0; i < projected.attrs.size(); ++i) {
          if (d.attrs.count(static_cast<uint16_t>(i)) == 0 &&
              i != def->identifier_attr) {
            projected.attrs[i] = Value::Null();
          }
        }
        ng.atoms.push_back(std::move(projected));
      }
    }
    out.groups.push_back(std::move(ng));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

Result<MoleculeSet> Executor::Qualify(const QueryPlan& plan,
                                      const Expr* where) {
  // Materializing path (Run / DML): phase timings attach to the statement
  // trace installed on this thread, if any — untraced statements pay one
  // thread-local load and nothing else.
  obs::StatementTrace* trace = obs::CurrentTrace();
  MoleculeSet set;
  uint64_t t0 = trace ? obs::NowNs() : 0;
  PRIMA_ASSIGN_OR_RETURN(std::vector<Atom> roots, RootCandidates(plan));
  if (trace != nullptr) {
    trace->AddPhaseNs("execute", "roots", obs::NowNs() - t0);
    trace->GetPhase("execute", "roots")->AddCounter("roots", roots.size());
    t0 = obs::NowNs();
  }
  for (const Atom& root : roots) {
    PRIMA_ASSIGN_OR_RETURN(Molecule molecule, Assemble(plan, root));
    if (where != nullptr) {
      PRIMA_ASSIGN_OR_RETURN(const bool ok, Eval(molecule, *where, {}));
      if (!ok) continue;
    }
    set.molecules.push_back(std::move(molecule));
  }
  if (trace != nullptr) {
    trace->AddPhaseNs("execute", "assembly", obs::NowNs() - t0);
    trace->GetPhase("execute", "assembly")
        ->AddCounter("molecules", set.molecules.size());
  }
  return set;
}

Result<MoleculeSet> Executor::Run(const Query& query) {
  stats_.queries++;
  PRIMA_ASSIGN_OR_RETURN(QueryPlan plan,
                         Prepare(query.from, query.where.get()));
  return RunWithPlan(query, plan);
}

Result<MoleculeSet> Executor::RunWithPlan(const Query& query,
                                          const QueryPlan& plan) {
  PRIMA_ASSIGN_OR_RETURN(MoleculeSet set, Qualify(plan, query.where.get()));
  obs::StatementTrace* trace = obs::CurrentTrace();
  const uint64_t t0 = trace ? obs::NowNs() : 0;
  MoleculeSet projected;
  projected.molecules.reserve(set.molecules.size());
  for (Molecule& m : set.molecules) {
    PRIMA_ASSIGN_OR_RETURN(Molecule p, Project(query, plan, std::move(m)));
    projected.molecules.push_back(std::move(p));
  }
  if (trace != nullptr) {
    trace->AddPhaseNs("execute", "project", obs::NowNs() - t0);
  }
  return projected;
}

// ---------------------------------------------------------------------------
// Streaming cursors
// ---------------------------------------------------------------------------

Result<MoleculeCursor> Executor::OpenCursor(
    Query query, std::shared_ptr<const std::atomic<bool>> invalidated,
    std::shared_ptr<obs::StatementTrace> trace,
    std::shared_ptr<access::VersionStore::Pin> snapshot) {
  PRIMA_ASSIGN_OR_RETURN(QueryPlan plan,
                         Prepare(query.from, query.where.get()));
  return OpenCursorWithPlan(std::move(query), std::move(plan),
                            std::move(invalidated), std::move(trace),
                            std::move(snapshot));
}

Result<MoleculeCursor> Executor::OpenCursorWithPlan(
    Query query, QueryPlan plan,
    std::shared_ptr<const std::atomic<bool>> invalidated,
    std::shared_ptr<obs::StatementTrace> trace,
    std::shared_ptr<access::VersionStore::Pin> snapshot) {
  stats_.queries.fetch_add(1, std::memory_order_relaxed);  // every cursor
                                                           // open is one query
  MoleculeCursor cursor;
  cursor.shared_ = std::make_shared<MoleculeCursor::Shared>();
  cursor.shared_->exec = this;
  cursor.shared_->query = std::move(query);
  cursor.shared_->plan = std::move(plan);
  cursor.shared_->trace = std::move(trace);
  cursor.shared_->snapshot = std::move(snapshot);
  cursor.invalidated_ = std::move(invalidated);
  // Open only the root source here — roots are pulled incrementally from
  // the scan layer as the cursor drains, never materialized.
  PRIMA_ASSIGN_OR_RETURN(cursor.source_, OpenRootSource(cursor.shared_->plan));
  if (cursor.shared_->snapshot != nullptr) {
    cursor.source_->view_ = &cursor.shared_->snapshot->view();
  }
  if (assembly_pool_ != nullptr && assembly_threads_ > 1) {
    cursor.pool_ = assembly_pool_;
    // A couple of slots beyond the worker count keeps the pipeline fed
    // while the consumer projects, without assembling far past what the
    // consumer asked for.
    cursor.lookahead_ = std::min<size_t>(assembly_threads_ * 2, 64);
  }
  stats_.cursors_opened++;
  return cursor;
}

util::Status MoleculeCursor::TopUpWindow() {
  obs::StatementTrace* trace = shared_->trace.get();
  const uint64_t t0 = trace ? obs::NowNs() : 0;
  uint64_t roots_pulled = 0;
  while (!source_drained_ && window_.size() < lookahead_) {
    PRIMA_ASSIGN_OR_RETURN(std::optional<access::Atom> root, source_->Next());
    if (!root) {
      source_drained_ = true;
      break;
    }
    roots_pulled++;
    auto slot = std::make_shared<Slot>();
    // The task captures the shared query context and its slot by
    // shared_ptr: closing, moving, or destroying the cursor mid-flight
    // leaves the worker on valid ground, its result simply unobserved.
    pool_->Submit([shared = shared_, slot, root = std::move(*root)]() {
      // Workers report through the trace's ATOMIC kernel counters only
      // (busy time here; buffer hit/miss via the thread-local context) —
      // the phase tree stays single-threaded with the consumer.
      obs::StatementTrace* wtrace = shared->trace.get();
      obs::TraceContext tc(wtrace);
      // Snapshot cursors: the worker assembles under the cursor's read
      // view, so every GetAtom it issues resolves to the pinned version —
      // identical, value for value, to what the serial path reads.
      access::ReadViewScope view_scope(
          shared->snapshot != nullptr ? &shared->snapshot->view() : nullptr);
      const uint64_t w0 = wtrace ? obs::NowNs() : 0;
      util::Result<Molecule> m = shared->exec->Assemble(shared->plan, root);
      std::lock_guard<std::mutex> lock(slot->mu);
      if (m.ok()) {
        slot->molecule = std::move(m).value();
        slot->qualified = true;
        if (shared->query.where != nullptr) {
          util::Result<bool> q =
              shared->exec->Eval(slot->molecule, *shared->query.where, {});
          if (q.ok()) {
            slot->qualified = *q;
          } else {
            slot->status = q.status();
          }
        }
      } else {
        slot->status = m.status();
      }
      if (wtrace != nullptr) {
        wtrace->worker_assembly_ns.fetch_add(obs::NowNs() - w0,
                                             std::memory_order_relaxed);
        wtrace->worker_assemblies.fetch_add(1, std::memory_order_relaxed);
      }
      slot->done = true;
      slot->cv.notify_all();
    });
    window_.push_back(std::move(slot));
  }
  if (trace != nullptr && roots_pulled > 0) {
    // Root-pull time (consumer side; the pulls interleave task submission,
    // which is part of what feeding the pipeline costs).
    trace->AddPhaseNs("execute", "roots", obs::NowNs() - t0);
    trace->GetPhase("execute", "roots")->AddCounter("roots", roots_pulled);
  }
  return Status::Ok();
}

Result<std::optional<Molecule>> MoleculeCursor::Next() {
  if (aborted_ || (shared_ != nullptr && invalidated_ != nullptr &&
                   invalidated_->load())) {
    aborted_ = true;  // sticky: a truncated stream must keep failing
    Close();
    return Status::Aborted(
        "cursor invalidated: the transaction it was reading under aborted");
  }
  if (shared_ == nullptr) return std::optional<Molecule>();  // closed/drained
  if (pool_ == nullptr || lookahead_ <= 1) return NextSerial();

  for (;;) {
    PRIMA_RETURN_IF_ERROR(TopUpWindow());
    if (window_.empty()) {
      Close();
      return std::optional<Molecule>();
    }
    std::shared_ptr<Slot> slot = std::move(window_.front());
    window_.pop_front();
    obs::StatementTrace* trace = shared_->trace.get();
    uint64_t t0 = trace ? obs::NowNs() : 0;
    {
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->cv.wait(lock, [&] { return slot->done; });
    }
    if (trace != nullptr) {
      // Consumer-visible assembly cost: how long Next() waited for the
      // pipelined worker. The workers' own busy time lands next to it as
      // the worker_busy_us counter (folded in at Finish).
      trace->AddPhaseNs("execute", "assembly", obs::NowNs() - t0);
    }
    // Slots drain strictly in submission order — root order — so the
    // stream below is indistinguishable from the serial cursor's.
    PRIMA_RETURN_IF_ERROR(slot->status);
    if (!slot->qualified) continue;
    t0 = trace ? obs::NowNs() : 0;
    PRIMA_ASSIGN_OR_RETURN(Molecule projected,
                           shared_->exec->ProjectMolecule(
                               shared_->query, shared_->plan,
                               std::move(slot->molecule)));
    if (trace != nullptr) {
      trace->AddPhaseNs("execute", "project", obs::NowNs() - t0);
      trace->GetPhase("execute", "assembly")->AddCounter("molecules", 1);
    }
    shared_->exec->stats().cursor_molecules.fetch_add(
        1, std::memory_order_relaxed);
    return std::optional<Molecule>(std::move(projected));
  }
}

Result<std::optional<Molecule>> MoleculeCursor::NextSerial() {
  obs::StatementTrace* trace = shared_->trace.get();
  for (;;) {
    uint64_t t0 = trace ? obs::NowNs() : 0;
    PRIMA_ASSIGN_OR_RETURN(std::optional<access::Atom> root, source_->Next());
    if (trace != nullptr && root.has_value()) {
      trace->AddPhaseNs("execute", "roots", obs::NowNs() - t0);
      trace->GetPhase("execute", "roots")->AddCounter("roots", 1);
    }
    if (!root) break;
    // The view scope starts only after the root pull: the underlying scan
    // must run latest-committed (RootSource resolves its candidates
    // itself), while assembly below reads under the cursor's view.
    access::ReadViewScope view_scope(
        shared_->snapshot != nullptr ? &shared_->snapshot->view() : nullptr);
    t0 = trace ? obs::NowNs() : 0;
    PRIMA_ASSIGN_OR_RETURN(Molecule molecule,
                           shared_->exec->Assemble(shared_->plan, *root));
    bool qualified = true;
    if (shared_->query.where != nullptr) {
      PRIMA_ASSIGN_OR_RETURN(
          qualified, shared_->exec->Eval(molecule, *shared_->query.where, {}));
    }
    if (trace != nullptr) {
      trace->AddPhaseNs("execute", "assembly", obs::NowNs() - t0);
    }
    if (!qualified) continue;
    t0 = trace ? obs::NowNs() : 0;
    PRIMA_ASSIGN_OR_RETURN(Molecule projected,
                           shared_->exec->ProjectMolecule(
                               shared_->query, shared_->plan,
                               std::move(molecule)));
    if (trace != nullptr) {
      trace->AddPhaseNs("execute", "project", obs::NowNs() - t0);
      trace->GetPhase("execute", "assembly")->AddCounter("molecules", 1);
    }
    shared_->exec->stats().cursor_molecules.fetch_add(
        1, std::memory_order_relaxed);
    return std::optional<Molecule>(std::move(projected));
  }
  Close();
  return std::optional<Molecule>();
}

Result<MoleculeSet> MoleculeCursor::Drain() {
  MoleculeSet set;
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(std::optional<Molecule> m, Next());
    if (!m.has_value()) break;
    set.molecules.push_back(std::move(*m));
  }
  return set;
}

void MoleculeCursor::Close() {
  // In-flight look-ahead tasks keep running detached (they own shared_ptrs
  // to the query context and their slot); dropping the window just means
  // nobody will wait for or observe them.
  window_.clear();
  source_.reset();
  shared_.reset();
  source_drained_ = false;
  pool_ = nullptr;
  lookahead_ = 0;
}

}  // namespace prima::mql
