#ifndef PRIMA_MQL_PARSER_H_
#define PRIMA_MQL_PARSER_H_

#include <string>

#include "mql/ast.h"
#include "util/result.h"

namespace prima::mql {

/// Parse one MQL statement (the grammar reconstructed from the paper's
/// Table 2.1 and Fig. 2.3 — every published example parses verbatim; see
/// README "MQL reference" for the full grammar).
util::Result<Statement> ParseStatement(const std::string& text);

/// Parse a bare FROM-clause structure (used when resolving stored molecule
/// type definitions).
util::Result<FromClause> ParseFromText(const std::string& text);

}  // namespace prima::mql

#endif  // PRIMA_MQL_PARSER_H_
