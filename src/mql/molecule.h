#ifndef PRIMA_MQL_MOLECULE_H_
#define PRIMA_MQL_MOLECULE_H_

#include <string>
#include <vector>

#include "access/catalog.h"
#include "access/value.h"

namespace prima::mql {

/// All atoms of one component type within a molecule occurrence.
struct MoleculeGroup {
  std::string component;  ///< component name (the atom type name)
  access::AtomTypeId type = 0;
  std::vector<access::Atom> atoms;
};

/// One molecule occurrence: a set of heterogeneous records (atoms),
/// structured dynamically by the query's FROM clause (paper §2.2). Groups
/// appear in structure pre-order; groups[0] holds the root atom(s).
struct Molecule {
  std::vector<MoleculeGroup> groups;
  /// For recursive molecules: surrogates per recursion level
  /// (levels[0] = the seed/root). Empty for non-recursive molecules.
  std::vector<std::vector<access::Tid>> levels;

  const MoleculeGroup* FindGroup(const std::string& component) const {
    for (const auto& g : groups) {
      if (g.component == component) return &g;
    }
    return nullptr;
  }
  MoleculeGroup* FindGroup(const std::string& component) {
    for (auto& g : groups) {
      if (g.component == component) return &g;
    }
    return nullptr;
  }

  size_t AtomCount() const {
    size_t n = 0;
    for (const auto& g : groups) n += g.atoms.size();
    return n;
  }

  /// Pretty-print with attribute names from the catalog.
  std::string ToString(const access::Catalog& catalog) const;
};

/// Query result: the molecule set of the specified molecule type.
struct MoleculeSet {
  std::vector<Molecule> molecules;

  size_t size() const { return molecules.size(); }
  bool empty() const { return molecules.empty(); }

  std::string ToString(const access::Catalog& catalog) const;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_MOLECULE_H_
