#include "mql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace prima::mql {

using util::Result;
using util::Status;

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
std::string Upper(const std::string& s) {
  std::string u = s;
  for (auto& c : u) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return u;
}
}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // (* comment *)
    if (c == '(' && i + 1 < n && text[i + 1] == '*') {
      const size_t close = text.find("*)", i + 2);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated comment at offset " +
                                  std::to_string(i));
      }
      i = close + 2;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      tok.kind = TokenKind::kIdent;
      tok.text = text.substr(i, j - i);
      tok.upper = Upper(tok.text);
      i = j;
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i;
      bool is_real = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      if (j < n && (text[j] == 'E' || text[j] == 'e')) {
        size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_real = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
        }
      }
      const std::string num = text.substr(i, j - i);
      if (is_real) {
        tok.kind = TokenKind::kReal;
        tok.real_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInt;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = num;
      i = j;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != '\'') {
        body.push_back(text[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(i));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(body);
      i = j + 1;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '@') {
      // @type:seq surrogate literal
      size_t j = i + 1;
      std::string type_part, seq_part;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
        type_part.push_back(text[j]);
        ++j;
      }
      if (j >= n || text[j] != ':' || type_part.empty()) {
        return Status::ParseError("malformed surrogate literal at offset " +
                                  std::to_string(i));
      }
      ++j;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
        seq_part.push_back(text[j]);
        ++j;
      }
      if (seq_part.empty()) {
        return Status::ParseError("malformed surrogate literal at offset " +
                                  std::to_string(i));
      }
      tok.kind = TokenKind::kTid;
      tok.int_value = std::strtoll(type_part.c_str(), nullptr, 10);
      tok.real_value = static_cast<double>(std::strtoll(seq_part.c_str(), nullptr, 10));
      tok.text = text.substr(i, j - i);
      i = j;
      out.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    auto two = [&](const char* s) {
      return i + 1 < n && text[i] == s[0] && text[i + 1] == s[1];
    };
    tok.kind = TokenKind::kSymbol;
    if (two(":=") || two("<>") || two("!=") || two("<=") || two(">=")) {
      tok.text = text.substr(i, 2);
      i += 2;
    } else if (std::string("(){}[],;:.-=<>*+/?").find(c) != std::string::npos) {
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(i));
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace prima::mql
