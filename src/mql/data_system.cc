#include "mql/data_system.h"

#include <set>

#include "mql/parser.h"

namespace prima::mql {

using access::AtomTypeDef;
using access::AttrValue;
using access::Tid;
using access::Value;
using util::Result;
using util::Status;

Result<ExecResult> DataSystem::Execute(const std::string& text,
                                       ExecContext* ctx) {
  PRIMA_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  if (!stmt.params.empty()) {
    return Status::InvalidArgument(
        "statement has placeholders - prepare it and bind values first");
  }
  return ExecuteStatement(stmt, ctx);
}

Result<ExecResult> DataSystem::ExecuteStatement(const Statement& stmt,
                                                ExecContext* ctx,
                                                const QueryPlan* plan) {
  switch (stmt.kind) {
    case Statement::Kind::kQuery:
      return RunQuery(stmt.query, plan);
    case Statement::Kind::kCreateAtomType:
      return RunCreateAtomType(stmt.create_atom_type);
    case Statement::Kind::kDefineMoleculeType:
      return RunDefineMolecule(stmt.define_molecule_type);
    case Statement::Kind::kDrop:
      return RunDrop(stmt.drop);
    case Statement::Kind::kInsert:
      return RunInsert(stmt.insert, ctx);
    case Statement::Kind::kDelete:
      return RunDelete(stmt.del, ctx, plan);
    case Statement::Kind::kModify:
      return RunModify(stmt.modify, ctx, plan);
    case Statement::Kind::kConnect:
      return RunConnect(stmt.connect, ctx);
    case Statement::Kind::kBeginWork:
    case Statement::Kind::kCommitWork:
    case Statement::Kind::kAbortWork: {
      if (ctx == nullptr) {
        return Status::InvalidArgument(
            "transaction statements need a session (Prima::OpenSession)");
      }
      Status st;
      if (stmt.kind == Statement::Kind::kBeginWork) {
        st = ctx->BeginWork(stmt.begin_read_only);
      } else if (stmt.kind == Statement::Kind::kCommitWork) {
        st = ctx->CommitWork();
      } else {
        st = ctx->AbortWork();
      }
      PRIMA_RETURN_IF_ERROR(st);
      ExecResult r;
      r.kind = ExecResult::Kind::kNone;
      return r;
    }
  }
  return Status::InvalidArgument("unhandled statement");
}

Result<MoleculeSet> DataSystem::ExecuteQuery(const std::string& text) {
  PRIMA_ASSIGN_OR_RETURN(ExecResult r, Execute(text));
  if (r.kind != ExecResult::Kind::kMolecules) {
    return Status::InvalidArgument("statement is not a query");
  }
  return std::move(r.molecules);
}

std::string DataSystem::Format(const ExecResult& result) const {
  switch (result.kind) {
    case ExecResult::Kind::kMolecules:
      return result.molecules.ToString(access_->catalog());
    case ExecResult::Kind::kTid:
      return "inserted " + result.tid.ToString() + "\n";
    case ExecResult::Kind::kCount:
      return std::to_string(result.count) + " atom(s) affected\n";
    case ExecResult::Kind::kNone:
      return "ok\n";
    case ExecResult::Kind::kText:
      return result.text;
  }
  return "";
}

Result<ExecResult> DataSystem::RunQuery(const struct Query& q,
                                        const QueryPlan* plan) {
  ExecResult r;
  r.kind = ExecResult::Kind::kMolecules;
  if (plan != nullptr) {
    PRIMA_ASSIGN_OR_RETURN(r.molecules, executor_.RunWithPlan(q, *plan));
    executor_.stats().queries++;
  } else {
    PRIMA_ASSIGN_OR_RETURN(r.molecules, executor_.Run(q));
  }
  return r;
}

Result<ExecResult> DataSystem::RunCreateAtomType(
    const CreateAtomTypeStmt& stmt) {
  PRIMA_ASSIGN_OR_RETURN(
      const access::AtomTypeId ignored,
      access_->CreateAtomType(stmt.name, stmt.attrs, stmt.keys));
  (void)ignored;
  ExecResult r;
  r.kind = ExecResult::Kind::kNone;
  return r;
}

Result<ExecResult> DataSystem::RunDefineMolecule(
    const DefineMoleculeTypeStmt& stmt) {
  // Validate by resolving against the current schema.
  PRIMA_ASSIGN_OR_RETURN(FromClause from, ParseFromText(stmt.from_text));
  SemanticAnalyzer analyzer(&access_->catalog());
  PRIMA_ASSIGN_OR_RETURN(ResolvedStructure ignored, analyzer.Resolve(from));
  (void)ignored;
  access::MoleculeTypeDef def;
  def.name = stmt.name;
  def.from_text = stmt.from_text;
  def.recursive = stmt.recursive;
  PRIMA_RETURN_IF_ERROR(access_->catalog().DefineMoleculeType(std::move(def)));
  ExecResult r;
  r.kind = ExecResult::Kind::kNone;
  return r;
}

Result<ExecResult> DataSystem::RunDrop(const DropStmt& stmt) {
  if (stmt.what == DropStmt::What::kAtomType) {
    PRIMA_RETURN_IF_ERROR(access_->DropAtomType(stmt.name));
  } else {
    PRIMA_RETURN_IF_ERROR(access_->catalog().DropMoleculeType(stmt.name));
  }
  ExecResult r;
  r.kind = ExecResult::Kind::kNone;
  return r;
}

Result<ExecResult> DataSystem::RunInsert(const InsertStmt& stmt,
                                         ExecContext* ctx) {
  const AtomTypeDef* def = access_->catalog().FindAtomType(stmt.type_name);
  if (def == nullptr) {
    return Status::NotFound("atom type " + stmt.type_name);
  }
  std::vector<AttrValue> values;
  for (const AttrAssign& assign : stmt.values) {
    const access::AttributeDef* attr = def->FindAttr(assign.attr);
    if (attr == nullptr) {
      return Status::InvalidArgument("unknown attribute " + stmt.type_name +
                                     "." + assign.attr);
    }
    values.push_back(AttrValue{attr->id, assign.value});
  }
  ExecResult r;
  r.kind = ExecResult::Kind::kTid;
  if (ctx != nullptr) {
    PRIMA_ASSIGN_OR_RETURN(r.tid, ctx->InsertAtom(def->id, std::move(values)));
  } else {
    PRIMA_ASSIGN_OR_RETURN(r.tid,
                           access_->InsertAtom(def->id, std::move(values)));
  }
  return r;
}

Result<ExecResult> DataSystem::RunDelete(const DeleteStmt& stmt,
                                         ExecContext* ctx,
                                         const QueryPlan* plan) {
  QueryPlan local;
  if (plan == nullptr) {
    PRIMA_ASSIGN_OR_RETURN(local, executor_.Prepare(stmt.from,
                                                    stmt.where.get()));
    plan = &local;
  }
  PRIMA_ASSIGN_OR_RETURN(MoleculeSet set,
                         executor_.Qualify(*plan, stmt.where.get()));
  // Components to delete: named ones, or every component (whole molecules).
  std::set<std::string> which(stmt.components.begin(), stmt.components.end());
  std::set<uint64_t> victims;
  for (const Molecule& m : set.molecules) {
    for (const MoleculeGroup& g : m.groups) {
      if (!which.empty() && which.count(g.component) == 0) continue;
      for (const access::Atom& a : g.atoms) victims.insert(a.tid.Pack());
    }
  }
  ExecResult r;
  r.kind = ExecResult::Kind::kCount;
  for (uint64_t packed : victims) {
    const Tid tid = Tid::Unpack(packed);
    const Status st =
        ctx != nullptr ? ctx->DeleteAtom(tid) : access_->DeleteAtom(tid);
    if (!st.ok() && !st.IsNotFound()) return st;
    if (st.ok()) ++r.count;
  }
  return r;
}

Result<ExecResult> DataSystem::RunModify(const ModifyStmt& stmt,
                                         ExecContext* ctx,
                                         const QueryPlan* plan) {
  QueryPlan local;
  if (plan == nullptr) {
    PRIMA_ASSIGN_OR_RETURN(local, executor_.Prepare(stmt.from,
                                                    stmt.where.get()));
    plan = &local;
  }
  PRIMA_ASSIGN_OR_RETURN(MoleculeSet set,
                         executor_.Qualify(*plan, stmt.where.get()));
  const AtomTypeDef* target_def = nullptr;
  ExecResult r;
  r.kind = ExecResult::Kind::kCount;
  std::set<uint64_t> modified;
  for (const Molecule& m : set.molecules) {
    const MoleculeGroup* g = m.FindGroup(stmt.target);
    if (g == nullptr) {
      return Status::InvalidArgument("MODIFY target " + stmt.target +
                                     " is not a component");
    }
    if (target_def == nullptr) {
      target_def = access_->catalog().GetAtomType(g->type);
    }
    std::vector<AttrValue> changes;
    for (const AttrAssign& assign : stmt.sets) {
      const access::AttributeDef* attr = target_def->FindAttr(assign.attr);
      if (attr == nullptr) {
        return Status::InvalidArgument("unknown attribute " + assign.attr);
      }
      changes.push_back(AttrValue{attr->id, assign.value});
    }
    for (const access::Atom& a : g->atoms) {
      if (!modified.insert(a.tid.Pack()).second) continue;
      const Status st = ctx != nullptr
                            ? ctx->ModifyAtom(a.tid, changes)
                            : access_->ModifyAtom(a.tid, changes);
      PRIMA_RETURN_IF_ERROR(st);
      ++r.count;
    }
  }
  return r;
}

Result<ExecResult> DataSystem::RunConnect(const ConnectStmt& stmt,
                                          ExecContext* ctx) {
  const AtomTypeDef* def = access_->catalog().GetAtomType(stmt.from.type);
  if (def == nullptr) {
    return Status::NotFound("atom type of " + stmt.from.ToString());
  }
  const access::AttributeDef* attr = def->FindAttr(stmt.attr);
  if (attr == nullptr) {
    return Status::InvalidArgument("unknown attribute " + def->name + "." +
                                   stmt.attr);
  }
  Status st;
  if (stmt.connect) {
    st = ctx != nullptr ? ctx->Connect(stmt.from, attr->id, stmt.to)
                        : access_->Connect(stmt.from, attr->id, stmt.to);
  } else {
    st = ctx != nullptr ? ctx->Disconnect(stmt.from, attr->id, stmt.to)
                        : access_->Disconnect(stmt.from, attr->id, stmt.to);
  }
  PRIMA_RETURN_IF_ERROR(st);
  ExecResult r;
  r.kind = ExecResult::Kind::kNone;
  return r;
}

}  // namespace prima::mql
