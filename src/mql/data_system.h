#ifndef PRIMA_MQL_DATA_SYSTEM_H_
#define PRIMA_MQL_DATA_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "access/access_system.h"
#include "mql/executor.h"
#include "mql/molecule.h"
#include "mql/statement_cache.h"
#include "obs/telemetry.h"

namespace prima::mql {

/// Result of executing one MQL statement. Move-only: a molecule set can be
/// megabytes of assembled atoms, and the facade returns it through several
/// layers — an accidental copy on that path would double every query's
/// cost, so the type forbids it outright.
struct ExecResult {
  enum class Kind {
    kMolecules,  ///< SELECT
    kTid,        ///< INSERT
    kCount,      ///< DELETE / MODIFY (# atoms affected)
    kNone,       ///< DDL / CONNECT / transaction control
    kText,       ///< EXPLAIN ANALYZE (rendered span tree)
  };
  ExecResult() = default;
  ExecResult(ExecResult&&) = default;
  ExecResult& operator=(ExecResult&&) = default;
  ExecResult(const ExecResult&) = delete;
  ExecResult& operator=(const ExecResult&) = delete;

  Kind kind = Kind::kNone;
  MoleculeSet molecules;
  access::Tid tid;
  uint64_t count = 0;
  std::string text;
};

/// The transaction context a statement executes under. The data system
/// dispatches BEGIN/COMMIT/ABORT WORK to it and routes every DML mutation
/// through it, so locking, undo logging, and WAL transaction tagging follow
/// the session's open transaction instead of hitting the access system
/// untagged. Implemented by core::Session (the core layer knows the nested
/// transaction machinery; this interface keeps the mql layer free of that
/// dependency). Statements executed WITHOUT a context (legacy direct
/// DataSystem use) fall back to raw access-system calls.
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  // Transaction-control statements. `read_only` opens a pinned-snapshot
  // transaction: every query in it reads one consistent view and DML/DDL
  // are refused until COMMIT/ABORT WORK releases it.
  virtual util::Status BeginWork(bool read_only) = 0;
  virtual util::Status CommitWork() = 0;
  virtual util::Status AbortWork() = 0;

  // DML, routed through the session's open (or implicit) transaction.
  virtual util::Result<access::Tid> InsertAtom(
      access::AtomTypeId type, std::vector<access::AttrValue> values) = 0;
  virtual util::Status ModifyAtom(const access::Tid& tid,
                                  std::vector<access::AttrValue> changes) = 0;
  virtual util::Status DeleteAtom(const access::Tid& tid) = 0;
  virtual util::Status Connect(const access::Tid& from, uint16_t attr,
                               const access::Tid& to) = 0;
  virtual util::Status Disconnect(const access::Tid& from, uint16_t attr,
                                  const access::Tid& to) = 0;
};

/// The data system (paper §3.1, top DBMS layer of Fig. 3.1): translates
/// MOL/MQL statements into access-system calls — validation & modification,
/// simplification, preparation, and molecule management — and executes them.
class DataSystem {
 public:
  explicit DataSystem(access::AccessSystem* access)
      : access_(access), executor_(access) {}

  /// Parse and execute one statement. With a context, DML runs under the
  /// session's transaction and BEGIN/COMMIT/ABORT WORK are dispatched to
  /// it; without one, DML hits the access system directly and transaction
  /// statements fail. Statements with placeholders are refused here — they
  /// must go through Session::Prepare, which binds them first.
  util::Result<ExecResult> Execute(const std::string& text,
                                   ExecContext* ctx = nullptr);

  /// Execute an already-parsed (and, for prepared statements, already
  /// parameter-substituted) statement. `plan` optionally supplies a cached
  /// query plan for SELECT / DELETE / MODIFY — the prepared-statement plan
  /// reuse path (§3.1 separates preparation from execution).
  util::Result<ExecResult> ExecuteStatement(const Statement& stmt,
                                            ExecContext* ctx = nullptr,
                                            const QueryPlan* plan = nullptr);

  /// Convenience: Execute a SELECT and return its molecule set.
  util::Result<MoleculeSet> ExecuteQuery(const std::string& text);

  /// Render a result for interactive display.
  std::string Format(const ExecResult& result) const;

  Executor& executor() { return executor_; }
  access::AccessSystem& access() { return *access_; }
  DataStats& stats() { return executor_.stats(); }
  /// Shared, schema-versioned compile cache keyed by MQL text: sessions
  /// consult it on every one-shot Execute/Query, so repeated statement
  /// texts — every raw network Execute included — get the prepared
  /// parse-once-plan-once fast path without calling Prepare.
  StatementCache& statement_cache() { return statement_cache_; }

  /// Kernel telemetry hub (histograms, slow-query log, tracing knobs).
  /// Attached by Prima::Open; null for bare embedded rigs — sessions fall
  /// back to untraced execution (EXPLAIN ANALYZE still works: it carries
  /// its own trace).
  void set_telemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }
  obs::Telemetry* telemetry() const { return telemetry_; }

 private:
  util::Result<ExecResult> RunQuery(const struct Query& q,
                                    const QueryPlan* plan);
  util::Result<ExecResult> RunCreateAtomType(const CreateAtomTypeStmt& stmt);
  util::Result<ExecResult> RunDefineMolecule(const DefineMoleculeTypeStmt& stmt);
  util::Result<ExecResult> RunDrop(const DropStmt& stmt);
  util::Result<ExecResult> RunInsert(const InsertStmt& stmt, ExecContext* ctx);
  util::Result<ExecResult> RunDelete(const DeleteStmt& stmt, ExecContext* ctx,
                                     const QueryPlan* plan);
  util::Result<ExecResult> RunModify(const ModifyStmt& stmt, ExecContext* ctx,
                                     const QueryPlan* plan);
  util::Result<ExecResult> RunConnect(const ConnectStmt& stmt,
                                      ExecContext* ctx);

  access::AccessSystem* access_;
  Executor executor_;
  StatementCache statement_cache_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_DATA_SYSTEM_H_
