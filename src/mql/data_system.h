#ifndef PRIMA_MQL_DATA_SYSTEM_H_
#define PRIMA_MQL_DATA_SYSTEM_H_

#include <memory>
#include <string>

#include "access/access_system.h"
#include "mql/executor.h"
#include "mql/molecule.h"

namespace prima::mql {

/// Result of executing one MQL statement.
struct ExecResult {
  enum class Kind {
    kMolecules,  ///< SELECT
    kTid,        ///< INSERT
    kCount,      ///< DELETE / MODIFY (# atoms affected)
    kNone,       ///< DDL / CONNECT
  };
  Kind kind = Kind::kNone;
  MoleculeSet molecules;
  access::Tid tid;
  uint64_t count = 0;
};

/// The data system (paper §3.1, top DBMS layer of Fig. 3.1): translates
/// MOL/MQL statements into access-system calls — validation & modification,
/// simplification, preparation, and molecule management — and executes them.
class DataSystem {
 public:
  explicit DataSystem(access::AccessSystem* access)
      : access_(access), executor_(access) {}

  /// Parse and execute one statement.
  util::Result<ExecResult> Execute(const std::string& text);

  /// Convenience: Execute a SELECT and return its molecule set.
  util::Result<MoleculeSet> ExecuteQuery(const std::string& text);

  /// Render a result for interactive display.
  std::string Format(const ExecResult& result) const;

  Executor& executor() { return executor_; }
  access::AccessSystem& access() { return *access_; }
  DataStats& stats() { return executor_.stats(); }

 private:
  util::Result<ExecResult> RunQuery(const struct Query& q);
  util::Result<ExecResult> RunCreateAtomType(const CreateAtomTypeStmt& stmt);
  util::Result<ExecResult> RunDefineMolecule(const DefineMoleculeTypeStmt& stmt);
  util::Result<ExecResult> RunDrop(const DropStmt& stmt);
  util::Result<ExecResult> RunInsert(const InsertStmt& stmt);
  util::Result<ExecResult> RunDelete(const DeleteStmt& stmt);
  util::Result<ExecResult> RunModify(const ModifyStmt& stmt);
  util::Result<ExecResult> RunConnect(const ConnectStmt& stmt);

  access::AccessSystem* access_;
  Executor executor_;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_DATA_SYSTEM_H_
