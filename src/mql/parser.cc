#include "mql/parser.h"

#include <memory>

#include "mql/lexer.h"

namespace prima::mql {

using access::AttributeDef;
using access::Cardinality;
using access::CompareOp;
using access::Tid;
using access::TypeDesc;
using access::Value;
using util::Result;
using util::Status;

namespace {

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  Result<Statement> ParseStatement() {
    PRIMA_RETURN_IF_ERROR(Init());
    Statement stmt;
    if (AcceptKeyword("EXPLAIN")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
      stmt.explain_analyze = true;
    }
    if (IsKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kQuery;
      PRIMA_ASSIGN_OR_RETURN(stmt.query, ParseQuery());
    } else if (IsKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateAtomType;
      PRIMA_ASSIGN_OR_RETURN(stmt.create_atom_type, ParseCreateAtomType());
    } else if (IsKeyword("DEFINE")) {
      stmt.kind = Statement::Kind::kDefineMoleculeType;
      PRIMA_ASSIGN_OR_RETURN(stmt.define_molecule_type, ParseDefineMolecule());
    } else if (IsKeyword("DROP")) {
      stmt.kind = Statement::Kind::kDrop;
      PRIMA_ASSIGN_OR_RETURN(stmt.drop, ParseDrop());
    } else if (IsKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      PRIMA_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else if (IsKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      PRIMA_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
    } else if (IsKeyword("MODIFY")) {
      stmt.kind = Statement::Kind::kModify;
      PRIMA_ASSIGN_OR_RETURN(stmt.modify, ParseModify());
    } else if (IsKeyword("CONNECT") || IsKeyword("DISCONNECT")) {
      stmt.kind = Statement::Kind::kConnect;
      PRIMA_ASSIGN_OR_RETURN(stmt.connect, ParseConnect());
    } else if (AcceptKeyword("BEGIN")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("WORK"));
      stmt.kind = Statement::Kind::kBeginWork;
      if (AcceptKeyword("READ")) {
        PRIMA_RETURN_IF_ERROR(ExpectKeyword("ONLY"));
        stmt.begin_read_only = true;
      }
    } else if (AcceptKeyword("COMMIT")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("WORK"));
      stmt.kind = Statement::Kind::kCommitWork;
    } else if (AcceptKeyword("ABORT")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("WORK"));
      stmt.kind = Statement::Kind::kAbortWork;
    } else {
      return Err("expected a statement keyword");
    }
    (void)AcceptSymbol(";");
    if (!AtEnd()) return Err("trailing input after statement");
    if (stmt.explain_analyze) {
      if (stmt.kind == Statement::Kind::kBeginWork ||
          stmt.kind == Statement::Kind::kCommitWork ||
          stmt.kind == Statement::Kind::kAbortWork) {
        return Status::ParseError(
            "EXPLAIN ANALYZE needs an executable statement, not "
            "transaction control");
      }
      if (!params_.empty()) {
        return Status::ParseError(
            "EXPLAIN ANALYZE does not take placeholders - explain the "
            "statement with literal values");
      }
    }
    // Placeholders are meaningful only where a bound value can flow into
    // execution: queries and DML. (DDL never parses value literals, so
    // params_ stays empty there — this check documents the contract.)
    if (!params_.empty() && stmt.kind != Statement::Kind::kQuery &&
        stmt.kind != Statement::Kind::kInsert &&
        stmt.kind != Statement::Kind::kDelete &&
        stmt.kind != Statement::Kind::kModify) {
      return Status::ParseError(
          "placeholders are only allowed in SELECT / INSERT / DELETE / "
          "MODIFY statements");
    }
    stmt.params = std::move(params_);
    return stmt;
  }

  Result<FromClause> ParseBareFrom() {
    PRIMA_RETURN_IF_ERROR(Init());
    PRIMA_ASSIGN_OR_RETURN(FromClause from, ParseFromStructure());
    if (!AtEnd()) return Err("trailing input after structure");
    return from;
  }

 private:
  Status Init() {
    PRIMA_ASSIGN_OR_RETURN(tokens_, Lex(text_));
    pos_ = 0;
    return Status::Ok();
  }

  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    return tokens_[std::min(pos_ + n, tokens_.size() - 1)];
  }
  bool AtEnd() const { return Cur().kind == TokenKind::kEnd; }
  void Advance() {
    if (!AtEnd()) ++pos_;
  }

  Status Err(const std::string& what) const {
    return Status::ParseError(what + " near offset " +
                              std::to_string(Cur().offset) +
                              (Cur().text.empty() ? "" : " ('" + Cur().text + "')"));
  }

  bool IsKeyword(const char* kw) const {
    return Cur().kind == TokenKind::kIdent && Cur().upper == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) return Err(std::string("expected ") + kw);
    return Status::Ok();
  }
  bool IsSymbol(const char* s) const {
    return Cur().kind == TokenKind::kSymbol && Cur().text == s;
  }
  bool AcceptSymbol(const char* s) {
    if (!IsSymbol(s)) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) return Err(std::string("expected '") + s + "'");
    return Status::Ok();
  }
  Result<std::string> ExpectIdent() {
    if (Cur().kind != TokenKind::kIdent) return Err("expected identifier");
    std::string name = Cur().text;
    Advance();
    return name;
  }

  // --- literals --------------------------------------------------------------

  /// Parameter placeholder at a literal position: `?` declares a fresh
  /// positional slot, `:name` declares (or re-references) a named slot.
  /// Returns the slot index, or -1 when the cursor is not at a placeholder.
  int AcceptParam() {
    if (AcceptSymbol("?")) {
      params_.push_back(ParamDecl{});
      return static_cast<int>(params_.size() - 1);
    }
    if (IsSymbol(":") && Peek().kind == TokenKind::kIdent) {
      Advance();  // :
      std::string name = Cur().text;
      Advance();
      for (size_t i = 0; i < params_.size(); ++i) {
        if (!params_[i].name.empty() && params_[i].name == name) {
          return static_cast<int>(i);
        }
      }
      params_.push_back(ParamDecl{std::move(name)});
      return static_cast<int>(params_.size() - 1);
    }
    return -1;
  }

  Result<Value> ParseLiteral() {
    bool negative = false;
    if (IsSymbol("-")) {
      negative = true;
      Advance();
    }
    switch (Cur().kind) {
      case TokenKind::kInt: {
        const int64_t v = Cur().int_value;
        Advance();
        return Value::Int(negative ? -v : v);
      }
      case TokenKind::kReal: {
        const double v = Cur().real_value;
        Advance();
        return Value::Real(negative ? -v : v);
      }
      case TokenKind::kString: {
        if (negative) return Err("unexpected '-' before string");
        Value v = Value::String(Cur().text);
        Advance();
        return v;
      }
      case TokenKind::kTid: {
        if (negative) return Err("unexpected '-' before surrogate");
        Value v = Value::Ref(Tid(static_cast<access::AtomTypeId>(Cur().int_value),
                                 static_cast<uint64_t>(Cur().real_value)));
        Advance();
        return v;
      }
      default:
        break;
    }
    if (negative) return Err("expected number after '-'");
    if (AcceptKeyword("TRUE")) return Value::Bool(true);
    if (AcceptKeyword("FALSE")) return Value::Bool(false);
    if (AcceptKeyword("EMPTY")) return Value::EmptyList();
    if (AcceptSymbol("{")) {
      std::vector<Value> elems;
      if (!AcceptSymbol("}")) {
        do {
          PRIMA_ASSIGN_OR_RETURN(Value e, ParseLiteral());
          elems.push_back(std::move(e));
        } while (AcceptSymbol(","));
        PRIMA_RETURN_IF_ERROR(ExpectSymbol("}"));
      }
      return Value::List(std::move(elems));
    }
    if (AcceptSymbol("[")) {
      std::vector<Value> elems;
      if (!AcceptSymbol("]")) {
        do {
          PRIMA_ASSIGN_OR_RETURN(Value e, ParseLiteral());
          elems.push_back(std::move(e));
        } while (AcceptSymbol(","));
        PRIMA_RETURN_IF_ERROR(ExpectSymbol("]"));
      }
      return Value::Record(std::move(elems));
    }
    return Err("expected a literal");
  }

  // --- attribute paths --------------------------------------------------------

  Result<AttrPath> ParseAttrPath() {
    AttrPath path;
    PRIMA_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    // molecule(level) seed form
    if (IsSymbol("(") && Peek().kind == TokenKind::kInt &&
        Peek(2).kind == TokenKind::kSymbol && Peek(2).text == ")") {
      Advance();  // (
      path.component = std::move(first);
      path.level = static_cast<int>(Cur().int_value);
      Advance();  // int
      Advance();  // )
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("."));
      PRIMA_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      path.attrs.push_back(std::move(attr));
    } else if (AcceptSymbol(".")) {
      path.component = std::move(first);
      PRIMA_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      path.attrs.push_back(std::move(attr));
    } else {
      path.attrs.push_back(std::move(first));
    }
    while (AcceptSymbol(".")) {
      PRIMA_ASSIGN_OR_RETURN(std::string f, ExpectIdent());
      path.attrs.push_back(std::move(f));
    }
    return path;
  }

  // --- conditions --------------------------------------------------------------

  Result<ExprPtr> ParseCondition() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PRIMA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    if (!IsKeyword("OR")) return lhs;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kOr;
    node->children.push_back(std::move(lhs));
    while (AcceptKeyword("OR")) {
      PRIMA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      node->children.push_back(std::move(rhs));
    }
    return ExprPtr(std::move(node));
  }

  Result<ExprPtr> ParseAnd() {
    PRIMA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    if (!IsKeyword("AND")) return lhs;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kAnd;
    node->children.push_back(std::move(lhs));
    while (AcceptKeyword("AND")) {
      PRIMA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      node->children.push_back(std::move(rhs));
    }
    return ExprPtr(std::move(node));
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptKeyword("NOT")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      PRIMA_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      node->children.push_back(std::move(child));
      return ExprPtr(std::move(node));
    }
    // Quantifiers.
    if (IsKeyword("EXISTS_AT_LEAST") || IsKeyword("EXISTS") ||
        IsKeyword("FOR_ALL") || IsKeyword("ALL_OF")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kQuantifier;
      if (AcceptKeyword("EXISTS_AT_LEAST")) {
        node->quant = Expr::Quant::kExistsAtLeast;
        PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
        if (Cur().kind != TokenKind::kInt) return Err("expected count");
        node->quant_count = static_cast<uint32_t>(Cur().int_value);
        Advance();
        PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else if (AcceptKeyword("EXISTS")) {
        node->quant = Expr::Quant::kExists;
      } else {
        Advance();  // FOR_ALL / ALL_OF
        node->quant = Expr::Quant::kForAll;
      }
      PRIMA_ASSIGN_OR_RETURN(node->quant_component, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(":"));
      PRIMA_ASSIGN_OR_RETURN(node->quant_body, ParseUnary());
      return ExprPtr(std::move(node));
    }
    if (AcceptSymbol("(")) {
      PRIMA_ASSIGN_OR_RETURN(ExprPtr inner, ParseCondition());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    PRIMA_ASSIGN_OR_RETURN(node->lhs, ParseAttrPath());
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>") || AcceptSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else if (AcceptKeyword("CONTAINS")) {
      op = CompareOp::kContains;
    } else {
      return Err("expected comparison operator");
    }
    // EMPTY tests become dedicated ops.
    if (IsKeyword("EMPTY")) {
      Advance();
      if (op == CompareOp::kEq) {
        node->op = CompareOp::kIsEmpty;
      } else if (op == CompareOp::kNe) {
        node->op = CompareOp::kNotEmpty;
      } else {
        return Err("EMPTY only combines with = or <>");
      }
      return ExprPtr(std::move(node));
    }
    node->op = op;
    // Parameter placeholder? (`attr = ?` / `attr = :name`)
    if (const int p = AcceptParam(); p >= 0) {
      node->param = p;
      return ExprPtr(std::move(node));
    }
    // Path-path comparison?
    if (Cur().kind == TokenKind::kIdent && !IsKeyword("TRUE") &&
        !IsKeyword("FALSE")) {
      PRIMA_ASSIGN_OR_RETURN(AttrPath rhs, ParseAttrPath());
      node->rhs_path = std::move(rhs);
      return ExprPtr(std::move(node));
    }
    PRIMA_ASSIGN_OR_RETURN(node->literal, ParseLiteral());
    return ExprPtr(std::move(node));
  }

  // --- FROM clause -------------------------------------------------------------

  // component := ident ['.' ident] [ '(' structure (',' structure)* ')' ]
  // with the special branch body `(RECURSIVE)` marking recursion.
  Result<StructureNode> ParseComponent(bool* recursive) {
    StructureNode node;
    PRIMA_ASSIGN_OR_RETURN(node.name, ExpectIdent());
    if (IsSymbol(".") && Peek().kind == TokenKind::kIdent) {
      Advance();
      PRIMA_ASSIGN_OR_RETURN(node.via_attr, ExpectIdent());
    }
    if (IsSymbol("(")) {
      // Lookahead: recursion marker?
      if (Peek().kind == TokenKind::kIdent && Peek().upper == "RECURSIVE" &&
          Peek(2).kind == TokenKind::kSymbol && Peek(2).text == ")") {
        Advance();  // (
        Advance();  // RECURSIVE
        Advance();  // )
        *recursive = true;
        return node;
      }
      Advance();  // (
      do {
        PRIMA_ASSIGN_OR_RETURN(std::vector<StructureNode> branch,
                               ParseChain(recursive));
        node.branches.push_back(std::move(branch));
      } while (AcceptSymbol(","));
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      // A trailing (RECURSIVE) may still follow a branch list.
      if (IsSymbol("(") && Peek().kind == TokenKind::kIdent &&
          Peek().upper == "RECURSIVE") {
        Advance();
        Advance();
        PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
        *recursive = true;
      }
    }
    return node;
  }

  Result<std::vector<StructureNode>> ParseChain(bool* recursive) {
    std::vector<StructureNode> chain;
    PRIMA_ASSIGN_OR_RETURN(StructureNode first, ParseComponent(recursive));
    chain.push_back(std::move(first));
    while (IsSymbol("-")) {
      Advance();
      PRIMA_ASSIGN_OR_RETURN(StructureNode next, ParseComponent(recursive));
      chain.push_back(std::move(next));
    }
    return chain;
  }

  Result<FromClause> ParseFromStructure() {
    FromClause from;
    PRIMA_ASSIGN_OR_RETURN(from.chain, ParseChain(&from.recursive));
    return from;
  }

  // --- SELECT ------------------------------------------------------------------

  Result<std::vector<ProjItem>> ParseSelectList() {
    std::vector<ProjItem> items;
    if (AcceptKeyword("ALL")) {
      ProjItem all;
      all.kind = ProjItem::Kind::kAll;
      items.push_back(std::move(all));
      return items;
    }
    PRIMA_RETURN_IF_ERROR(ParseSelectItems(&items));
    return items;
  }

  Status ParseSelectItems(std::vector<ProjItem>* items) {
    do {
      if (AcceptSymbol("(")) {
        PRIMA_RETURN_IF_ERROR(ParseSelectItems(items));  // grouping — flatten
        PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
        continue;
      }
      // Qualified projection: name := SELECT ...
      if (Cur().kind == TokenKind::kIdent && Peek().kind == TokenKind::kSymbol &&
          Peek().text == ":=") {
        ProjItem item;
        item.kind = ProjItem::Kind::kQualified;
        PRIMA_ASSIGN_OR_RETURN(item.component, ExpectIdent());
        Advance();  // :=
        PRIMA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
        if (!AcceptKeyword("ALL")) {
          do {
            PRIMA_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
            item.attrs.push_back(std::move(attr));
          } while (AcceptSymbol(","));
        }
        PRIMA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
        PRIMA_ASSIGN_OR_RETURN(std::string from_name, ExpectIdent());
        if (from_name != item.component) {
          return Err("qualified projection must re-select its component");
        }
        if (AcceptKeyword("WHERE")) {
          PRIMA_ASSIGN_OR_RETURN(item.qualification, ParseCondition());
        }
        items->push_back(std::move(item));
        continue;
      }
      // Attribute path or bare component.
      PRIMA_ASSIGN_OR_RETURN(AttrPath path, ParseAttrPath());
      ProjItem item;
      if (path.component.empty() && path.attrs.size() == 1) {
        // `edge` — either a component or a root attribute; the semantic
        // analyzer decides. Record both readings.
        item.kind = ProjItem::Kind::kComponent;
        item.component = path.attrs[0];
        item.path = std::move(path);
      } else {
        item.kind = ProjItem::Kind::kAttr;
        item.path = std::move(path);
      }
      items->push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::Ok();
  }

  Result<Query> ParseQuery() {
    Query q;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    PRIMA_ASSIGN_OR_RETURN(q.select, ParseSelectList());
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PRIMA_ASSIGN_OR_RETURN(q.from, ParseFromStructure());
    if (AcceptKeyword("WHERE")) {
      PRIMA_ASSIGN_OR_RETURN(q.where, ParseCondition());
    }
    return q;
  }

  // --- DDL ----------------------------------------------------------------------

  Result<TypeDesc> ParseType() {
    if (AcceptKeyword("IDENTIFIER")) return TypeDesc::Identifier();
    if (AcceptKeyword("INTEGER")) return TypeDesc::Integer();
    if (AcceptKeyword("REAL")) return TypeDesc::Real();
    if (AcceptKeyword("BOOLEAN")) return TypeDesc::Boolean();
    if (AcceptKeyword("CHAR_VAR")) return TypeDesc::CharVar();
    if (AcceptKeyword("CHAR")) {
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Cur().kind != TokenKind::kInt) return Err("expected CHAR length");
      const uint32_t n = static_cast<uint32_t>(Cur().int_value);
      Advance();
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return TypeDesc::Char(n);
    }
    if (AcceptKeyword("REF_TO")) {
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      PRIMA_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("."));
      PRIMA_ASSIGN_OR_RETURN(std::string attr_name, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return TypeDesc::RefTo(std::move(type_name), std::move(attr_name));
    }
    if (IsKeyword("SET_OF") || IsKeyword("LIST_OF")) {
      const bool is_set = IsKeyword("SET_OF");
      Advance();
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      PRIMA_ASSIGN_OR_RETURN(TypeDesc elem, ParseType());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      Cardinality card;
      // Optional `(min, max|VAR)`.
      if (IsSymbol("(") && (Peek().kind == TokenKind::kInt)) {
        Advance();
        card.min = static_cast<uint32_t>(Cur().int_value);
        Advance();
        PRIMA_RETURN_IF_ERROR(ExpectSymbol(","));
        if (AcceptKeyword("VAR")) {
          card.var_max = true;
        } else if (Cur().kind == TokenKind::kInt) {
          card.var_max = false;
          card.max = static_cast<uint32_t>(Cur().int_value);
          Advance();
        } else {
          return Err("expected max cardinality or VAR");
        }
        PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return is_set ? TypeDesc::SetOf(std::move(elem), card)
                    : TypeDesc::ListOf(std::move(elem), card);
    }
    if (AcceptKeyword("ARRAY_OF")) {
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      PRIMA_ASSIGN_OR_RETURN(TypeDesc elem, ParseType());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Cur().kind != TokenKind::kInt) return Err("expected ARRAY length");
      const uint32_t n = static_cast<uint32_t>(Cur().int_value);
      Advance();
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return TypeDesc::ArrayOf(std::move(elem), n);
    }
    if (AcceptKeyword("RECORD")) {
      std::vector<TypeDesc::Field> fields;
      while (!AcceptKeyword("END")) {
        std::vector<std::string> names;
        PRIMA_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
        names.push_back(std::move(first));
        while (IsSymbol(",") && Peek().kind == TokenKind::kIdent &&
               Peek(2).kind == TokenKind::kSymbol &&
               (Peek(2).text == "," || Peek(2).text == ":")) {
          Advance();
          PRIMA_ASSIGN_OR_RETURN(std::string more, ExpectIdent());
          names.push_back(std::move(more));
        }
        PRIMA_RETURN_IF_ERROR(ExpectSymbol(":"));
        PRIMA_ASSIGN_OR_RETURN(TypeDesc field_type, ParseType());
        auto shared = std::make_shared<const TypeDesc>(std::move(field_type));
        for (auto& n : names) {
          fields.push_back({std::move(n), shared});
        }
        (void)AcceptSymbol(",");
      }
      return TypeDesc::RecordOf(std::move(fields));
    }
    // Paper Fig. 2.3 uses the application type HULL_DIM(3); we interpret it
    // as a fixed REAL array (a 3D bounding volume) — see DESIGN.md.
    if (AcceptKeyword("HULL_DIM")) {
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      if (Cur().kind != TokenKind::kInt) return Err("expected HULL_DIM arity");
      const uint32_t n = static_cast<uint32_t>(Cur().int_value);
      Advance();
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return TypeDesc::ArrayOf(TypeDesc::Real(), 2 * n);
    }
    return Err("expected a type");
  }

  Result<CreateAtomTypeStmt> ParseCreateAtomType() {
    CreateAtomTypeStmt stmt;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    if (!AcceptKeyword("ATOM_TYPE")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("ATOM"));
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
    }
    PRIMA_ASSIGN_OR_RETURN(stmt.name, ExpectIdent());
    PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      AttributeDef attr;
      PRIMA_ASSIGN_OR_RETURN(attr.name, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(":"));
      PRIMA_ASSIGN_OR_RETURN(attr.type, ParseType());
      stmt.attrs.push_back(std::move(attr));
    } while (AcceptSymbol(","));
    PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (AcceptKeyword("KEYS_ARE")) {
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        PRIMA_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
        stmt.keys.push_back(std::move(key));
      } while (AcceptSymbol(","));
      PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    return stmt;
  }

  Result<DefineMoleculeTypeStmt> ParseDefineMolecule() {
    DefineMoleculeTypeStmt stmt;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("DEFINE"));
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("MOLECULE"));
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
    PRIMA_ASSIGN_OR_RETURN(stmt.name, ExpectIdent());
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    const size_t from_start = Cur().offset;
    PRIMA_ASSIGN_OR_RETURN(FromClause parsed, ParseFromStructure());
    stmt.recursive = parsed.recursive;
    size_t from_end = Cur().offset;
    if (AtEnd()) from_end = text_.size();
    stmt.from_text = text_.substr(from_start, from_end - from_start);
    return stmt;
  }

  Result<DropStmt> ParseDrop() {
    DropStmt stmt;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    if (AcceptKeyword("ATOM_TYPE") ||
        (AcceptKeyword("ATOM") && AcceptKeyword("TYPE"))) {
      stmt.what = DropStmt::What::kAtomType;
    } else if (AcceptKeyword("MOLECULE")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
      stmt.what = DropStmt::What::kMoleculeType;
    } else {
      return Err("expected ATOM_TYPE or MOLECULE TYPE");
    }
    PRIMA_ASSIGN_OR_RETURN(stmt.name, ExpectIdent());
    return stmt;
  }

  // --- DML ------------------------------------------------------------------------

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    (void)AcceptKeyword("INTO");
    PRIMA_ASSIGN_OR_RETURN(stmt.type_name, ExpectIdent());
    PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      AttrAssign a;
      PRIMA_ASSIGN_OR_RETURN(a.attr, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("="));
      a.param = AcceptParam();
      if (a.param < 0) {
        PRIMA_ASSIGN_OR_RETURN(a.value, ParseLiteral());
      }
      stmt.values.push_back(std::move(a));
    } while (AcceptSymbol(","));
    PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  Result<DeleteStmt> ParseDelete() {
    DeleteStmt stmt;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    if (!IsKeyword("FROM")) {
      if (!AcceptKeyword("ALL")) {
        do {
          PRIMA_ASSIGN_OR_RETURN(std::string comp, ExpectIdent());
          stmt.components.push_back(std::move(comp));
        } while (AcceptSymbol(","));
      }
    }
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PRIMA_ASSIGN_OR_RETURN(stmt.from, ParseFromStructure());
    if (AcceptKeyword("WHERE")) {
      PRIMA_ASSIGN_OR_RETURN(stmt.where, ParseCondition());
    }
    return stmt;
  }

  Result<ModifyStmt> ParseModify() {
    ModifyStmt stmt;
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("MODIFY"));
    PRIMA_ASSIGN_OR_RETURN(stmt.target, ExpectIdent());
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      AttrAssign a;
      PRIMA_ASSIGN_OR_RETURN(a.attr, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(ExpectSymbol("="));
      a.param = AcceptParam();
      if (a.param < 0) {
        PRIMA_ASSIGN_OR_RETURN(a.value, ParseLiteral());
      }
      stmt.sets.push_back(std::move(a));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("FROM")) {
      PRIMA_ASSIGN_OR_RETURN(stmt.from, ParseFromStructure());
    } else {
      StructureNode node;
      node.name = stmt.target;
      stmt.from.chain.push_back(std::move(node));
    }
    if (AcceptKeyword("WHERE")) {
      PRIMA_ASSIGN_OR_RETURN(stmt.where, ParseCondition());
    }
    return stmt;
  }

  Result<ConnectStmt> ParseConnect() {
    ConnectStmt stmt;
    stmt.connect = IsKeyword("CONNECT");
    Advance();
    if (Cur().kind != TokenKind::kTid) return Err("expected @type:seq");
    stmt.from = Tid(static_cast<access::AtomTypeId>(Cur().int_value),
                    static_cast<uint64_t>(Cur().real_value));
    Advance();
    PRIMA_RETURN_IF_ERROR(ExpectSymbol("."));
    PRIMA_ASSIGN_OR_RETURN(stmt.attr, ExpectIdent());
    if (stmt.connect) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("TO"));
    } else {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    }
    if (Cur().kind != TokenKind::kTid) return Err("expected @type:seq");
    stmt.to = Tid(static_cast<access::AtomTypeId>(Cur().int_value),
                  static_cast<uint64_t>(Cur().real_value));
    Advance();
    return stmt;
  }

  std::string text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<ParamDecl> params_;  ///< placeholder slots, in statement order
};

}  // namespace

Result<Statement> ParseStatement(const std::string& text) {
  Parser p(text);
  return p.ParseStatement();
}

Result<FromClause> ParseFromText(const std::string& text) {
  Parser p(text);
  return p.ParseBareFrom();
}

}  // namespace prima::mql
