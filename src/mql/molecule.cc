#include "mql/molecule.h"

namespace prima::mql {

namespace {
void PrintAtom(const access::Atom& atom, const access::AtomTypeDef* def,
               std::string* out) {
  *out += "  " + (def != nullptr ? def->name : "?") + atom.tid.ToString() + " {";
  bool first = true;
  for (size_t i = 0; i < atom.attrs.size(); ++i) {
    if (atom.attrs[i].is_null()) continue;
    if (def != nullptr && i == def->identifier_attr) continue;
    if (!first) *out += ", ";
    first = false;
    if (def != nullptr && i < def->attrs.size()) {
      *out += def->attrs[i].name + ": ";
    }
    *out += atom.attrs[i].ToString();
  }
  *out += "}\n";
}
}  // namespace

std::string Molecule::ToString(const access::Catalog& catalog) const {
  std::string out;
  for (const auto& g : groups) {
    if (g.atoms.empty()) continue;
    out += " " + g.component + " (" + std::to_string(g.atoms.size()) + "):\n";
    const access::AtomTypeDef* def = catalog.GetAtomType(g.type);
    for (const auto& atom : g.atoms) {
      PrintAtom(atom, def, &out);
    }
  }
  if (!levels.empty()) {
    out += " levels:";
    for (size_t l = 0; l < levels.size(); ++l) {
      out += " [" + std::to_string(l) + "]=" + std::to_string(levels[l].size());
    }
    out += "\n";
  }
  return out;
}

std::string MoleculeSet::ToString(const access::Catalog& catalog) const {
  std::string out = "molecule set (" + std::to_string(molecules.size()) +
                    " molecule" + (molecules.size() == 1 ? "" : "s") + ")\n";
  size_t idx = 0;
  for (const auto& m : molecules) {
    out += "molecule #" + std::to_string(idx++) + ":\n";
    out += m.ToString(catalog);
  }
  return out;
}

}  // namespace prima::mql
