#ifndef PRIMA_MQL_AST_H_
#define PRIMA_MQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "access/catalog.h"
#include "access/search_arg.h"
#include "access/value.h"

namespace prima::mql {

/// Attribute path in a condition or projection:
///   [component .] attr [. record-field ...]
/// plus the seed-qualification form `molecule(level).attr` of Table 2.1b.
struct AttrPath {
  std::string component;            ///< component/atom-type name; may be empty
  int level = -1;                   ///< >= 0 for molecule(level) references
  std::vector<std::string> attrs;   ///< attr name, then RECORD field names

  std::string ToString() const {
    std::string s = component;
    if (level >= 0) s += "(" + std::to_string(level) + ")";
    for (const auto& a : attrs) {
      if (!s.empty()) s += ".";
      s += a;
    }
    return s;
  }
};

// --- statement parameters ----------------------------------------------------

/// One declared placeholder of a statement, in placeholder order. Positional
/// placeholders (`?`) each get a fresh slot; named placeholders (`:name`)
/// share one slot per distinct name. The AST stores the slot index at every
/// site the placeholder occurs; execution substitutes the bound value there.
struct ParamDecl {
  std::string name;  ///< empty for positional (`?`) parameters
};

// --- conditions --------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// WHERE-clause expression tree.
struct Expr {
  enum class Kind {
    kCompare,     ///< path op literal  (or path op path)
    kAnd,
    kOr,
    kNot,
    kQuantifier,  ///< EXISTS / EXISTS_AT_LEAST(n) / FOR_ALL  comp : cond
  };

  Kind kind = Kind::kCompare;

  // kCompare
  AttrPath lhs;
  access::CompareOp op = access::CompareOp::kEq;
  access::Value literal;              ///< rhs literal (EMPTY => kIsEmpty op)
  int param = -1;                     ///< >=0: literal is parameter [param]
  std::optional<AttrPath> rhs_path;   ///< set for path-path comparison

  // kAnd / kOr / kNot
  std::vector<ExprPtr> children;

  // kQuantifier
  enum class Quant { kExists, kExistsAtLeast, kForAll };
  Quant quant = Quant::kExists;
  uint32_t quant_count = 1;
  std::string quant_component;
  ExprPtr quant_body;
};

// --- FROM clause -------------------------------------------------------------

/// One component in the FROM-clause molecule structure. `via_attr` is the
/// optional disambiguating reference attribute written `type.attr`.
struct StructureNode {
  std::string name;       ///< atom type or named molecule type
  std::string via_attr;   ///< association attribute toward the *next* node
  std::vector<std::vector<StructureNode>> branches;  ///< parenthesized fan-out
};

/// A FROM clause: a chain of components (each possibly branching), plus the
/// optional RECURSIVE marker.
struct FromClause {
  std::vector<StructureNode> chain;
  bool recursive = false;
};

// --- SELECT clause -----------------------------------------------------------

struct Query;

/// One projection item.
struct ProjItem {
  enum class Kind {
    kAll,        ///< SELECT ALL
    kComponent,  ///< whole component by name
    kAttr,       ///< single attribute (path)
    kQualified,  ///< name := SELECT attrs FROM name WHERE cond
  };
  Kind kind = Kind::kComponent;
  AttrPath path;                     // kAttr
  std::string component;             // kComponent / kQualified
  std::vector<std::string> attrs;    // kQualified: projected attrs (empty=ALL)
  ExprPtr qualification;             // kQualified
};

struct Query {
  std::vector<ProjItem> select;
  FromClause from;
  ExprPtr where;  ///< optional
};

// --- DDL ---------------------------------------------------------------------

struct CreateAtomTypeStmt {
  std::string name;
  std::vector<access::AttributeDef> attrs;
  std::vector<std::string> keys;
};

struct DefineMoleculeTypeStmt {
  std::string name;
  std::string from_text;  ///< verbatim FROM clause (re-parsed on use)
  bool recursive = false;
};

struct DropStmt {
  enum class What { kAtomType, kMoleculeType };
  What what = What::kAtomType;
  std::string name;
};

// --- DML ---------------------------------------------------------------------

/// One `attr = literal-or-placeholder` assignment of INSERT / MODIFY.
struct AttrAssign {
  std::string attr;
  access::Value value;
  int param = -1;  ///< >=0: value is parameter [param]
};

struct InsertStmt {
  std::string type_name;
  std::vector<AttrAssign> values;
};

struct DeleteStmt {
  /// Components to remove; empty = ALL (the whole molecule).
  std::vector<std::string> components;
  FromClause from;
  ExprPtr where;
};

struct ModifyStmt {
  std::string target;  ///< component whose atoms are modified
  std::vector<AttrAssign> sets;
  FromClause from;     ///< optional; defaults to the bare target type
  ExprPtr where;
};

struct ConnectStmt {
  bool connect = true;
  access::Tid from;
  std::string attr;
  access::Tid to;
};

/// Any parsed MQL statement.
struct Statement {
  enum class Kind {
    kQuery,
    kCreateAtomType,
    kDefineMoleculeType,
    kDrop,
    kInsert,
    kDelete,
    kModify,
    kConnect,
    kBeginWork,   ///< BEGIN WORK  — open a (nested) user transaction
    kCommitWork,  ///< COMMIT WORK — commit the innermost open transaction
    kAbortWork,   ///< ABORT WORK  — roll the innermost open transaction back
  };
  Kind kind = Kind::kQuery;
  /// `BEGIN WORK READ ONLY`: the transaction is a pinned snapshot — every
  /// query in it reads the same consistent view, DML/DDL are refused.
  bool begin_read_only = false;
  /// `EXPLAIN ANALYZE <stmt>`: execute the statement and return its span
  /// tree (per-phase timings and counters) as a text result instead of the
  /// statement's own result. The flag wraps the inner statement in place —
  /// `kind` and the per-kind members describe the statement being explained.
  bool explain_analyze = false;
  Query query;
  CreateAtomTypeStmt create_atom_type;
  DefineMoleculeTypeStmt define_molecule_type;
  DropStmt drop;
  InsertStmt insert;
  DeleteStmt del;
  ModifyStmt modify;
  ConnectStmt connect;
  /// Declared placeholders (`?` / `:name`), in placeholder order. Only
  /// query / DML statements may carry them; a prepared statement binds a
  /// value per slot before execution.
  std::vector<ParamDecl> params;
};

// --- deep copies -------------------------------------------------------------

/// Clone an expression tree (Expr owns children via unique_ptr, so the
/// implicit copy is deleted). Used by streaming cursors, which must own
/// their WHERE/SELECT while the prepared statement that spawned them is
/// re-bound or re-executed.
inline ExprPtr CloneExpr(const Expr* e) {
  if (e == nullptr) return nullptr;
  auto out = std::make_unique<Expr>();
  out->kind = e->kind;
  out->lhs = e->lhs;
  out->op = e->op;
  out->literal = e->literal;
  out->param = e->param;
  out->rhs_path = e->rhs_path;
  out->children.reserve(e->children.size());
  for (const ExprPtr& c : e->children) out->children.push_back(CloneExpr(c.get()));
  out->quant = e->quant;
  out->quant_count = e->quant_count;
  out->quant_component = e->quant_component;
  out->quant_body = CloneExpr(e->quant_body.get());
  return out;
}

inline ProjItem CloneProjItem(const ProjItem& item) {
  ProjItem out;
  out.kind = item.kind;
  out.path = item.path;
  out.component = item.component;
  out.attrs = item.attrs;
  out.qualification = CloneExpr(item.qualification.get());
  return out;
}

inline Query CloneQuery(const Query& q) {
  Query out;
  out.select.reserve(q.select.size());
  for (const ProjItem& item : q.select) out.select.push_back(CloneProjItem(item));
  out.from = q.from;
  out.where = CloneExpr(q.where.get());
  return out;
}

// --- parameter substitution --------------------------------------------------

/// Write bound parameter values into every placeholder site of an
/// expression tree. `values` is indexed by parameter slot; the caller
/// guarantees every referenced slot is bound (Session enforces this before
/// execution).
inline void SubstituteExprParams(Expr* e,
                                 const std::vector<access::Value>& values) {
  if (e == nullptr) return;
  if (e->param >= 0 && static_cast<size_t>(e->param) < values.size()) {
    e->literal = values[e->param];
  }
  for (ExprPtr& c : e->children) SubstituteExprParams(c.get(), values);
  SubstituteExprParams(e->quant_body.get(), values);
}

/// Substitute bound values into every placeholder site of a statement.
/// Placeholder sites keep their slot index, so re-binding and
/// re-substituting for the next execution is idempotent.
inline void SubstituteStatementParams(
    Statement* stmt, const std::vector<access::Value>& values) {
  switch (stmt->kind) {
    case Statement::Kind::kQuery:
      SubstituteExprParams(stmt->query.where.get(), values);
      for (ProjItem& item : stmt->query.select) {
        SubstituteExprParams(item.qualification.get(), values);
      }
      break;
    case Statement::Kind::kInsert:
      for (AttrAssign& a : stmt->insert.values) {
        if (a.param >= 0 && static_cast<size_t>(a.param) < values.size()) {
          a.value = values[a.param];
        }
      }
      break;
    case Statement::Kind::kDelete:
      SubstituteExprParams(stmt->del.where.get(), values);
      break;
    case Statement::Kind::kModify:
      for (AttrAssign& a : stmt->modify.sets) {
        if (a.param >= 0 && static_cast<size_t>(a.param) < values.size()) {
          a.value = values[a.param];
        }
      }
      SubstituteExprParams(stmt->modify.where.get(), values);
      break;
    default:
      break;
  }
}

}  // namespace prima::mql

#endif  // PRIMA_MQL_AST_H_
