#ifndef PRIMA_MQL_AST_H_
#define PRIMA_MQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "access/catalog.h"
#include "access/search_arg.h"
#include "access/value.h"

namespace prima::mql {

/// Attribute path in a condition or projection:
///   [component .] attr [. record-field ...]
/// plus the seed-qualification form `molecule(level).attr` of Table 2.1b.
struct AttrPath {
  std::string component;            ///< component/atom-type name; may be empty
  int level = -1;                   ///< >= 0 for molecule(level) references
  std::vector<std::string> attrs;   ///< attr name, then RECORD field names

  std::string ToString() const {
    std::string s = component;
    if (level >= 0) s += "(" + std::to_string(level) + ")";
    for (const auto& a : attrs) {
      if (!s.empty()) s += ".";
      s += a;
    }
    return s;
  }
};

// --- conditions --------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// WHERE-clause expression tree.
struct Expr {
  enum class Kind {
    kCompare,     ///< path op literal  (or path op path)
    kAnd,
    kOr,
    kNot,
    kQuantifier,  ///< EXISTS / EXISTS_AT_LEAST(n) / FOR_ALL  comp : cond
  };

  Kind kind = Kind::kCompare;

  // kCompare
  AttrPath lhs;
  access::CompareOp op = access::CompareOp::kEq;
  access::Value literal;              ///< rhs literal (EMPTY => kIsEmpty op)
  std::optional<AttrPath> rhs_path;   ///< set for path-path comparison

  // kAnd / kOr / kNot
  std::vector<ExprPtr> children;

  // kQuantifier
  enum class Quant { kExists, kExistsAtLeast, kForAll };
  Quant quant = Quant::kExists;
  uint32_t quant_count = 1;
  std::string quant_component;
  ExprPtr quant_body;
};

// --- FROM clause -------------------------------------------------------------

/// One component in the FROM-clause molecule structure. `via_attr` is the
/// optional disambiguating reference attribute written `type.attr`.
struct StructureNode {
  std::string name;       ///< atom type or named molecule type
  std::string via_attr;   ///< association attribute toward the *next* node
  std::vector<std::vector<StructureNode>> branches;  ///< parenthesized fan-out
};

/// A FROM clause: a chain of components (each possibly branching), plus the
/// optional RECURSIVE marker.
struct FromClause {
  std::vector<StructureNode> chain;
  bool recursive = false;
};

// --- SELECT clause -----------------------------------------------------------

struct Query;

/// One projection item.
struct ProjItem {
  enum class Kind {
    kAll,        ///< SELECT ALL
    kComponent,  ///< whole component by name
    kAttr,       ///< single attribute (path)
    kQualified,  ///< name := SELECT attrs FROM name WHERE cond
  };
  Kind kind = Kind::kComponent;
  AttrPath path;                     // kAttr
  std::string component;             // kComponent / kQualified
  std::vector<std::string> attrs;    // kQualified: projected attrs (empty=ALL)
  ExprPtr qualification;             // kQualified
};

struct Query {
  std::vector<ProjItem> select;
  FromClause from;
  ExprPtr where;  ///< optional
};

// --- DDL ---------------------------------------------------------------------

struct CreateAtomTypeStmt {
  std::string name;
  std::vector<access::AttributeDef> attrs;
  std::vector<std::string> keys;
};

struct DefineMoleculeTypeStmt {
  std::string name;
  std::string from_text;  ///< verbatim FROM clause (re-parsed on use)
  bool recursive = false;
};

struct DropStmt {
  enum class What { kAtomType, kMoleculeType };
  What what = What::kAtomType;
  std::string name;
};

// --- DML ---------------------------------------------------------------------

struct InsertStmt {
  std::string type_name;
  std::vector<std::pair<std::string, access::Value>> values;
};

struct DeleteStmt {
  /// Components to remove; empty = ALL (the whole molecule).
  std::vector<std::string> components;
  FromClause from;
  ExprPtr where;
};

struct ModifyStmt {
  std::string target;  ///< component whose atoms are modified
  std::vector<std::pair<std::string, access::Value>> sets;
  FromClause from;     ///< optional; defaults to the bare target type
  ExprPtr where;
};

struct ConnectStmt {
  bool connect = true;
  access::Tid from;
  std::string attr;
  access::Tid to;
};

/// Any parsed MQL statement.
struct Statement {
  enum class Kind {
    kQuery,
    kCreateAtomType,
    kDefineMoleculeType,
    kDrop,
    kInsert,
    kDelete,
    kModify,
    kConnect,
  };
  Kind kind = Kind::kQuery;
  Query query;
  CreateAtomTypeStmt create_atom_type;
  DefineMoleculeTypeStmt define_molecule_type;
  DropStmt drop;
  InsertStmt insert;
  DeleteStmt del;
  ModifyStmt modify;
  ConnectStmt connect;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_AST_H_
