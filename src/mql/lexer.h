#ifndef PRIMA_MQL_LEXER_H_
#define PRIMA_MQL_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace prima::mql {

enum class TokenKind {
  kIdent,      ///< identifiers and keywords (case-insensitive keywords)
  kInt,
  kReal,
  kString,     ///< 'quoted'
  kTid,        ///< @type:seq literal
  kSymbol,     ///< punctuation / operators, in `text`
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< identifier (original case), symbol, string body
  std::string upper;    ///< uppercased identifier for keyword matching
  int64_t int_value = 0;
  double real_value = 0;
  size_t offset = 0;    ///< byte offset (error messages)
};

/// Tokenize MQL / LDL text. Symbols recognized:
///   ( ) { } [ ] , ; : . - = <> != < <= > >= := * ?
/// `?` is the positional statement-parameter placeholder (`:name` composes
/// from ':' + identifier in the parser). Comments: (* ... *) — as in the
/// paper's examples.
util::Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace prima::mql

#endif  // PRIMA_MQL_LEXER_H_
