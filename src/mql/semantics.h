#ifndef PRIMA_MQL_SEMANTICS_H_
#define PRIMA_MQL_SEMANTICS_H_

#include <string>
#include <vector>

#include "access/access_system.h"
#include "mql/ast.h"

namespace prima::mql {

/// A component of the resolved (hierarchical) molecule structure. The
/// semantic analyzer turns the FROM clause — which may traverse the meshed
/// (network) schema in any direction — into this directed tree: the paper's
/// "resolution of a meshed molecule type into an equivalent hierarchical
/// one which is easier to cope with" (§3.1).
struct ResolvedNode {
  access::AtomTypeId type = 0;
  std::string name;          ///< component name (atom type name)
  uint16_t via_attr = 0;     ///< association attr on the *parent* leading here
  std::vector<ResolvedNode> children;
};

struct ResolvedStructure {
  ResolvedNode root;
  bool recursive = false;
  uint16_t rec_attr = 0;       ///< root-type association driving the recursion
  std::string molecule_name;   ///< named molecule type, if resolved from one

  /// All component types (pre-order, root first).
  std::vector<access::AtomTypeId> AllTypes() const;
  /// All component names (pre-order).
  std::vector<std::string> AllNames() const;
  const ResolvedNode* FindNode(const std::string& name) const;
  /// Number of nodes.
  size_t NodeCount() const;
};

/// Query validation & modification (paper §3.1): resolves predefined
/// molecule types, picks the linking associations between consecutive
/// components (with `type.attr` disambiguation), and validates recursion.
class SemanticAnalyzer {
 public:
  explicit SemanticAnalyzer(const access::Catalog* catalog)
      : catalog_(catalog) {}

  util::Result<ResolvedStructure> Resolve(const FromClause& from) const;

 private:
  util::Result<ResolvedStructure> ResolveInternal(const FromClause& from,
                                                  int depth) const;
  util::Result<ResolvedNode> ResolveChain(
      const std::vector<StructureNode>& chain, size_t index, int depth,
      bool* recursive, uint16_t* rec_attr, std::string* molecule_name) const;

  /// Find the association attribute on `parent` that leads to type `child`;
  /// `via` optionally names it (the `parent.attr` notation).
  util::Result<uint16_t> LinkAttr(const access::AtomTypeDef& parent,
                                  access::AtomTypeId child,
                                  const std::string& via) const;

  const access::Catalog* catalog_;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_SEMANTICS_H_
