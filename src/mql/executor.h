#ifndef PRIMA_MQL_EXECUTOR_H_
#define PRIMA_MQL_EXECUTOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "access/access_system.h"
#include "access/scan.h"
#include "mql/ast.h"
#include "mql/molecule.h"
#include "mql/semantics.h"

namespace prima::mql {

/// Counters of the data system (top of the Fig. 3.1 layer pyramid).
struct DataStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> molecules_built{0};
  std::atomic<uint64_t> cluster_assemblies{0};  ///< served from atom clusters
  std::atomic<uint64_t> bfs_assemblies{0};      ///< assembled by association chasing
  std::atomic<uint64_t> recursion_levels{0};
  std::atomic<uint64_t> key_lookups{0};
  std::atomic<uint64_t> access_path_scans{0};
  std::atomic<uint64_t> grid_scans{0};
  std::atomic<uint64_t> atom_type_scans{0};
  // Session / prepared-statement surface.
  std::atomic<uint64_t> statements_prepared{0};   ///< Session::Prepare calls
  std::atomic<uint64_t> prepared_executions{0};   ///< PreparedStatement runs
  std::atomic<uint64_t> prepared_plans{0};        ///< plans computed for them
  std::atomic<uint64_t> cursors_opened{0};
  std::atomic<uint64_t> cursor_molecules{0};      ///< streamed via Next()

  void Reset() {
    queries = molecules_built = cluster_assemblies = bfs_assemblies = 0;
    recursion_levels = key_lookups = access_path_scans = 0;
    grid_scans = atom_type_scans = 0;
    statements_prepared = prepared_executions = prepared_plans = 0;
    cursors_opened = cursor_molecules = 0;
  }
};

/// How the executor reaches the root atoms of the molecule set.
enum class RootAccess { kKeyLookup, kAccessPath, kGrid, kAtomTypeScan };

/// The prepared execution plan for one query (paper §3.1 "query
/// preparation"): root access selection with pushed-down qualifications,
/// the resolved hierarchical structure, and the cluster fast path decision.
struct QueryPlan {
  ResolvedStructure structure;
  RootAccess root_access = RootAccess::kAtomTypeScan;
  uint32_t access_structure_id = 0;
  std::vector<access::Value> eq_key;      ///< key lookup values
  access::KeyRange range;                 ///< access-path scan bounds
  std::vector<access::GridDimension> grid_dims;
  access::SearchArgument root_sarg;       ///< pushdown for scans
  bool use_cluster = false;
  uint32_t cluster_id = 0;
  /// Statement-parameter slots whose bound values are EMBEDDED in this plan
  /// (root-bound predicates feed eq_key / range / grid_dims / root_sarg).
  /// A prepared statement reuses the plan verbatim until one of THESE
  /// bindings changes — e.g. an eq-key placeholder — and only then
  /// re-plans; params outside root predicates never force a re-plan since
  /// the WHERE filter reads them from the (re-substituted) AST.
  std::vector<int> root_param_deps;
};

class Executor;

/// A pull-based molecule stream: the query's root candidates are enumerated
/// once at open, then each Next() assembles, qualifies, and projects ONE
/// molecule — first-row latency is one assembly, not the whole set, and a
/// consumer that stops early never pays for the molecules it skipped.
/// Draining a cursor yields element-for-element the same molecules as the
/// materializing Run() path.
///
/// A cursor owns its query (cloned at open), so the statement or session
/// that spawned it may be re-bound, re-executed, or closed while the cursor
/// drains. It must not outlive the database, and it reads whatever the
/// access system holds at each Next() — the session layer invalidates open
/// cursors (via the `invalidated` token) when a transaction abort rolls the
/// atoms they would read back.
class MoleculeCursor {
 public:
  MoleculeCursor() = default;  ///< a closed cursor
  // Moved-from cursors read as closed (exec_ == nullptr is the documented
  // closed state; a defaulted move would leave the raw pointer behind and
  // open()/roots_remaining() would lie about the gutted state).
  MoleculeCursor(MoleculeCursor&& other) noexcept
      : exec_(std::exchange(other.exec_, nullptr)),
        query_(std::move(other.query_)),
        plan_(std::move(other.plan_)),
        roots_(std::move(other.roots_)),
        next_root_(std::exchange(other.next_root_, 0)),
        invalidated_(std::move(other.invalidated_)),
        aborted_(std::exchange(other.aborted_, false)) {}
  MoleculeCursor& operator=(MoleculeCursor&& other) noexcept {
    if (this != &other) {
      exec_ = std::exchange(other.exec_, nullptr);
      query_ = std::move(other.query_);
      plan_ = std::move(other.plan_);
      roots_ = std::move(other.roots_);
      next_root_ = std::exchange(other.next_root_, 0);
      invalidated_ = std::move(other.invalidated_);
      aborted_ = std::exchange(other.aborted_, false);
    }
    return *this;
  }

  /// The next qualifying molecule, or nullopt when the set is drained.
  util::Result<std::optional<Molecule>> Next();

  /// Drain the remaining molecules into a set (the old materializing
  /// behavior; the legacy Prima::Query facade is exactly Open + Drain).
  util::Result<MoleculeSet> Drain();

  /// Drop the remaining molecules; Next() then reports drained. Idempotent.
  void Close();

  bool open() const { return exec_ != nullptr; }
  /// Roots not yet pulled (upper bound on remaining molecules).
  size_t roots_remaining() const { return roots_.size() - next_root_; }
  const QueryPlan& plan() const { return plan_; }

 private:
  friend class Executor;

  Executor* exec_ = nullptr;
  Query query_;
  QueryPlan plan_;
  std::vector<access::Atom> roots_;
  size_t next_root_ = 0;
  /// Set by the owning session when a transaction abort invalidates the
  /// atoms this cursor streams; Next() then fails with Aborted.
  std::shared_ptr<const std::atomic<bool>> invalidated_;
  /// Sticky: once invalidation fired, EVERY later Next()/Drain() keeps
  /// failing — a truncated stream must never read as a completed one.
  bool aborted_ = false;
};

/// The molecule management of the data system (paper §3.1): derives whole
/// molecule sets via a molecule-type scan, assembling each molecule either
/// by association chasing or from a covering atom cluster.
class Executor {
 public:
  explicit Executor(access::AccessSystem* access)
      : access_(access), analyzer_(&access->catalog()) {}

  /// Plan a query (exposed so tests and benches can inspect decisions).
  util::Result<QueryPlan> Prepare(const FromClause& from, const Expr* where);

  /// Run a full query.
  util::Result<MoleculeSet> Run(const Query& query);

  /// Run a query whose plan was already prepared (prepared statements).
  util::Result<MoleculeSet> RunWithPlan(const Query& query,
                                        const QueryPlan& plan);

  /// Open a streaming cursor over the query (plans it first). The cursor
  /// takes ownership of `query`.
  util::Result<MoleculeCursor> OpenCursor(
      Query query,
      std::shared_ptr<const std::atomic<bool>> invalidated = nullptr);

  /// Open a streaming cursor reusing a prepared plan.
  util::Result<MoleculeCursor> OpenCursorWithPlan(
      Query query, QueryPlan plan,
      std::shared_ptr<const std::atomic<bool>> invalidated = nullptr);

  /// Qualification only: resolve + scan + assemble + WHERE filter.
  util::Result<MoleculeSet> Qualify(const QueryPlan& plan, const Expr* where);

  /// Assemble the molecule rooted at `root` (public: used by DML and the
  /// semantic-parallelism processor).
  util::Result<Molecule> Assemble(const QueryPlan& plan,
                                  const access::Atom& root);

  /// Enumerate root-atom candidates via the plan's chosen access method
  /// (public: the semantic-parallelism processor decomposes on these).
  util::Result<std::vector<access::Atom>> Roots(const QueryPlan& plan) {
    return RootCandidates(plan);
  }

  /// Apply the SELECT clause to one qualified molecule (public: used by the
  /// semantic-parallelism processor).
  util::Result<Molecule> ProjectMolecule(const Query& query,
                                         const QueryPlan& plan,
                                         Molecule molecule) {
    return Project(query, plan, std::move(molecule));
  }

  /// Evaluate a WHERE expression on a molecule. `default_component`
  /// rebinds bare attribute names (empty = the root component); qualified
  /// projections evaluate their conditions in the projected component's
  /// scope.
  util::Result<bool> Eval(const Molecule& molecule, const Expr& expr,
                          const std::map<std::string, const access::Atom*>&
                              bindings,
                          const std::string& default_component = "") const;

  DataStats& stats() { return stats_; }
  access::AccessSystem* access() { return access_; }

 private:
  struct PathRef {
    const MoleculeGroup* group = nullptr;
    uint16_t attr = 0;
    std::vector<uint16_t> fields;
    int level = -1;
  };

  util::Result<PathRef> ResolvePath(const Molecule& molecule,
                                    const AttrPath& path) const;
  util::Result<std::vector<access::Value>> PathValues(
      const Molecule& molecule, const AttrPath& path,
      const std::map<std::string, const access::Atom*>& bindings,
      const std::string& default_component) const;

  /// Root-bound simple predicates from the top-level conjunction.
  struct RootPred {
    uint16_t attr;
    std::vector<uint16_t> fields;
    access::CompareOp op;
    access::Value operand;
    int param = -1;  ///< statement-parameter slot the operand came from
  };
  util::Status ExtractRootPreds(const Expr* where,
                                const ResolvedStructure& structure,
                                std::vector<RootPred>* out) const;

  util::Result<std::vector<access::Atom>> RootCandidates(const QueryPlan& plan);

  util::Result<Molecule> AssembleBfs(const ResolvedStructure& structure,
                                     const access::Atom& root);
  util::Result<Molecule> AssembleRecursive(const ResolvedStructure& structure,
                                           const access::Atom& root);
  util::Result<Molecule> AssembleFromCluster(const QueryPlan& plan,
                                             const access::Atom& root);

  util::Result<Molecule> Project(const Query& query, const QueryPlan& plan,
                                 Molecule molecule);

  access::AccessSystem* access_;
  SemanticAnalyzer analyzer_;
  DataStats stats_;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_EXECUTOR_H_
