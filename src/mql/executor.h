#ifndef PRIMA_MQL_EXECUTOR_H_
#define PRIMA_MQL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "access/access_system.h"
#include "access/scan.h"
#include "mql/ast.h"
#include "mql/molecule.h"
#include "mql/semantics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace prima::mql {

/// Counters of the data system (top of the Fig. 3.1 layer pyramid).
struct DataStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> molecules_built{0};
  std::atomic<uint64_t> cluster_assemblies{0};  ///< served from atom clusters
  std::atomic<uint64_t> bfs_assemblies{0};      ///< assembled by association chasing
  std::atomic<uint64_t> recursion_levels{0};
  std::atomic<uint64_t> key_lookups{0};
  std::atomic<uint64_t> access_path_scans{0};
  std::atomic<uint64_t> grid_scans{0};
  std::atomic<uint64_t> atom_type_scans{0};
  // Session / prepared-statement surface.
  std::atomic<uint64_t> statements_prepared{0};   ///< Session::Prepare calls
  std::atomic<uint64_t> prepared_executions{0};   ///< PreparedStatement runs
  std::atomic<uint64_t> prepared_plans{0};        ///< plans computed for them
  std::atomic<uint64_t> cursors_opened{0};
  std::atomic<uint64_t> cursor_molecules{0};      ///< streamed via Next()

  void Reset() {
    queries = molecules_built = cluster_assemblies = bfs_assemblies = 0;
    recursion_levels = key_lookups = access_path_scans = 0;
    grid_scans = atom_type_scans = 0;
    statements_prepared = prepared_executions = prepared_plans = 0;
    cursors_opened = cursor_molecules = 0;
  }
};

/// Plain-data copy of DataStats (relaxed loads), safe to copy and diff —
/// one leg of the coherent Prima::stats() snapshot.
struct DataStatsSnapshot {
  uint64_t queries = 0;
  uint64_t molecules_built = 0;
  uint64_t cluster_assemblies = 0;
  uint64_t bfs_assemblies = 0;
  uint64_t recursion_levels = 0;
  uint64_t key_lookups = 0;
  uint64_t access_path_scans = 0;
  uint64_t grid_scans = 0;
  uint64_t atom_type_scans = 0;
  uint64_t statements_prepared = 0;
  uint64_t prepared_executions = 0;
  uint64_t prepared_plans = 0;
  uint64_t cursors_opened = 0;
  uint64_t cursor_molecules = 0;
};

inline DataStatsSnapshot SnapshotStats(const DataStats& s) {
  DataStatsSnapshot out;
  out.queries = s.queries.load(std::memory_order_relaxed);
  out.molecules_built = s.molecules_built.load(std::memory_order_relaxed);
  out.cluster_assemblies = s.cluster_assemblies.load(std::memory_order_relaxed);
  out.bfs_assemblies = s.bfs_assemblies.load(std::memory_order_relaxed);
  out.recursion_levels = s.recursion_levels.load(std::memory_order_relaxed);
  out.key_lookups = s.key_lookups.load(std::memory_order_relaxed);
  out.access_path_scans = s.access_path_scans.load(std::memory_order_relaxed);
  out.grid_scans = s.grid_scans.load(std::memory_order_relaxed);
  out.atom_type_scans = s.atom_type_scans.load(std::memory_order_relaxed);
  out.statements_prepared = s.statements_prepared.load(std::memory_order_relaxed);
  out.prepared_executions = s.prepared_executions.load(std::memory_order_relaxed);
  out.prepared_plans = s.prepared_plans.load(std::memory_order_relaxed);
  out.cursors_opened = s.cursors_opened.load(std::memory_order_relaxed);
  out.cursor_molecules = s.cursor_molecules.load(std::memory_order_relaxed);
  return out;
}

/// How the executor reaches the root atoms of the molecule set.
enum class RootAccess { kKeyLookup, kAccessPath, kGrid, kAtomTypeScan };

/// The prepared execution plan for one query (paper §3.1 "query
/// preparation"): root access selection with pushed-down qualifications,
/// the resolved hierarchical structure, and the cluster fast path decision.
struct QueryPlan {
  ResolvedStructure structure;
  RootAccess root_access = RootAccess::kAtomTypeScan;
  uint32_t access_structure_id = 0;
  std::vector<access::Value> eq_key;      ///< key lookup values
  access::KeyRange range;                 ///< access-path scan bounds
  std::vector<access::GridDimension> grid_dims;
  access::SearchArgument root_sarg;       ///< pushdown for scans
  bool use_cluster = false;
  uint32_t cluster_id = 0;
  /// Statement-parameter slots whose bound values are EMBEDDED in this plan
  /// (root-bound predicates feed eq_key / range / grid_dims / root_sarg).
  /// A prepared statement reuses the plan verbatim until one of THESE
  /// bindings changes — e.g. an eq-key placeholder — and only then
  /// re-plans; params outside root predicates never force a re-plan since
  /// the WHERE filter reads them from the (re-substituted) AST.
  std::vector<int> root_param_deps;
};

class Executor;

/// An incremental root-candidate stream: wraps whichever access method the
/// plan chose (atom-type scan, B*-tree access path, grid, key lookup) and
/// yields root atoms one at a time in scan order. Cursors pull from this
/// instead of materializing the full root set at open, so open-latency and
/// memory stay bounded for huge root sets. Not thread-safe — the cursor
/// pulls roots only on the consumer thread.
///
/// Snapshot mode (`view_` set): the underlying scan still runs
/// latest-committed — the scan layer's own GetAtom calls error on missing
/// atoms, so no thread-local view may be active during pulls — and every
/// candidate is resolved against the view here. Candidates the view
/// predates are dropped; too-new candidates are replaced by their
/// before-image (the full WHERE re-evaluates downstream, so a before-image
/// that no longer satisfies the scan's pushed-down predicate is filtered
/// there). After the scan drains, a ghost pass resolves every chained atom
/// of the root type the scan never surfaced — atoms whose delete, or whose
/// move out of the scanned key range, the view cannot see — in sorted tid
/// order, so the stream is deterministic for a fixed view.
class RootSource {
 public:
  RootSource() = default;

  /// The next root candidate in scan order; nullopt when exhausted.
  util::Result<std::optional<access::Atom>> Next();

 private:
  friend class Executor;

  /// The raw (latest-committed) scan stream.
  util::Result<std::optional<access::Atom>> NextUnderlying();
  util::Result<std::optional<access::Atom>> NextSnapshot();

  // Exactly one of these is engaged (key lookups materialize their 0/1
  // results at open — the lookup IS the open).
  std::unique_ptr<access::AtomTypeScan> type_scan_;
  std::unique_ptr<access::BTreeAccessPathScan> path_scan_;
  std::unique_ptr<access::GridAccessPathScan> grid_scan_;
  std::vector<access::Atom> lookup_;
  size_t lookup_next_ = 0;
  bool use_lookup_ = false;

  // Snapshot mode. `view_` points into the cursor's pin (owned by the
  // cursor's Shared state, which outlives the source).
  access::AccessSystem* access_ = nullptr;
  const access::ReadView* view_ = nullptr;
  access::AtomTypeId root_type_ = 0;
  std::set<uint64_t> yielded_;       ///< packed tids the scan surfaced
  std::vector<uint64_t> ghosts_;
  size_t ghost_next_ = 0;
  bool ghosts_built_ = false;
};

/// A pull-based molecule stream. Root candidates are pulled incrementally
/// from the scan layer (never materialized), and each Next() returns the
/// next qualifying molecule — first-row latency is one assembly, not the
/// whole set, and a consumer that stops early never pays for the molecules
/// it skipped. Draining a cursor yields element-for-element the same
/// molecules as the materializing Run() path.
///
/// When the executor has an assembly pool (Executor::SetAssemblyPool with
/// more than one thread), Next() pipelines: a small bounded look-ahead of
/// upcoming roots is assembled and qualified on pool workers while the
/// consumer drains, and projection happens on the consumer thread in
/// submission order — so drain order and results stay byte-identical to
/// serial at every thread count, only the wall-clock changes.
///
/// A cursor owns its query (cloned at open), so the statement or session
/// that spawned it may be re-bound, re-executed, or closed while the cursor
/// drains. It must not outlive the database, and it reads whatever the
/// access system holds at each assembly — with look-ahead, up to
/// `lookahead` molecules may be assembled ahead of the Next() that returns
/// them. The session layer invalidates open cursors (via the `invalidated`
/// token) when a transaction abort rolls the atoms they would read back.
class MoleculeCursor {
 public:
  MoleculeCursor() = default;  ///< a closed cursor
  // Moved-from cursors read as closed (shared_ == nullptr is the closed
  // state) and non-aborted; in-flight look-ahead slots travel with the
  // window deque and keep their task state alive via shared_ptrs.
  MoleculeCursor(MoleculeCursor&& other) noexcept
      : shared_(std::move(other.shared_)),
        source_(std::move(other.source_)),
        window_(std::move(other.window_)),
        pool_(std::exchange(other.pool_, nullptr)),
        lookahead_(std::exchange(other.lookahead_, 0)),
        source_drained_(std::exchange(other.source_drained_, false)),
        invalidated_(std::move(other.invalidated_)),
        aborted_(std::exchange(other.aborted_, false)) {}
  MoleculeCursor& operator=(MoleculeCursor&& other) noexcept {
    if (this != &other) {
      shared_ = std::move(other.shared_);
      source_ = std::move(other.source_);
      window_ = std::move(other.window_);
      pool_ = std::exchange(other.pool_, nullptr);
      lookahead_ = std::exchange(other.lookahead_, 0);
      source_drained_ = std::exchange(other.source_drained_, false);
      invalidated_ = std::move(other.invalidated_);
      aborted_ = std::exchange(other.aborted_, false);
    }
    return *this;
  }

  /// The next qualifying molecule, or nullopt when the set is drained.
  util::Result<std::optional<Molecule>> Next();

  /// Drain the remaining molecules into a set (the old materializing
  /// behavior; the legacy Prima::Query facade is exactly Open + Drain).
  util::Result<MoleculeSet> Drain();

  /// Drop the remaining molecules; Next() then reports drained. Any
  /// in-flight look-ahead assemblies finish detached (their slots own the
  /// shared query state) and are discarded. Idempotent.
  void Close();

  bool open() const { return shared_ != nullptr; }
  const QueryPlan& plan() const { return shared_->plan; }

 private:
  friend class Executor;

  /// The query context look-ahead tasks run against. Heap-shared so moving
  /// or closing the cursor never invalidates a worker mid-assembly.
  struct Shared {
    Executor* exec = nullptr;
    Query query;
    QueryPlan plan;
    /// Trace of the statement draining this cursor, or null. shared_ptr:
    /// detached look-ahead tasks may outlive the statement, and their late
    /// counter writes must land in owned memory, never a dangling trace.
    /// Workers touch ONLY the trace's atomic kernel counters; the phase
    /// tree stays with the consumer thread.
    std::shared_ptr<obs::StatementTrace> trace;
    /// Pinned read view for snapshot-isolation cursors, or null
    /// (latest-committed). Lives here so detached look-ahead tasks keep the
    /// pin — and with it the version chains they resolve against — alive
    /// until the last task finishes.
    std::shared_ptr<access::VersionStore::Pin> snapshot;
  };

  /// One in-flight (or finished) look-ahead assembly.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;        ///< guarded by mu
    bool qualified = false;   ///< WHERE verdict
    util::Status status;      ///< assembly/eval error, if any
    Molecule molecule;
  };

  util::Result<std::optional<Molecule>> NextSerial();
  /// Submit assemble+qualify tasks until the window holds `lookahead_`
  /// slots or the root source is exhausted.
  util::Status TopUpWindow();

  std::shared_ptr<Shared> shared_;
  std::unique_ptr<RootSource> source_;
  std::deque<std::shared_ptr<Slot>> window_;
  util::ThreadPool* pool_ = nullptr;  ///< null or lookahead_ <= 1: serial
  size_t lookahead_ = 0;
  bool source_drained_ = false;
  /// Set by the owning session when a transaction abort invalidates the
  /// atoms this cursor streams; Next() then fails with Aborted.
  std::shared_ptr<const std::atomic<bool>> invalidated_;
  /// Sticky: once invalidation fired, EVERY later Next()/Drain() keeps
  /// failing — a truncated stream must never read as a completed one.
  bool aborted_ = false;
};

/// The molecule management of the data system (paper §3.1): derives whole
/// molecule sets via a molecule-type scan, assembling each molecule either
/// by association chasing or from a covering atom cluster.
class Executor {
 public:
  explicit Executor(access::AccessSystem* access)
      : access_(access), analyzer_(&access->catalog()) {}

  /// Plan a query (exposed so tests and benches can inspect decisions).
  util::Result<QueryPlan> Prepare(const FromClause& from, const Expr* where);

  /// Run a full query.
  util::Result<MoleculeSet> Run(const Query& query);

  /// Run a query whose plan was already prepared (prepared statements).
  util::Result<MoleculeSet> RunWithPlan(const Query& query,
                                        const QueryPlan& plan);

  /// Open a streaming cursor over the query (plans it first). The cursor
  /// takes ownership of `query`. `trace`, when set, receives the cursor's
  /// phase timings (roots / assembly / project) — pass it only when the
  /// cursor drains within the traced statement's scope. `snapshot`, when
  /// set, makes this a snapshot cursor: every read resolves against the
  /// pinned view, without acquiring a single lock.
  util::Result<MoleculeCursor> OpenCursor(
      Query query,
      std::shared_ptr<const std::atomic<bool>> invalidated = nullptr,
      std::shared_ptr<obs::StatementTrace> trace = nullptr,
      std::shared_ptr<access::VersionStore::Pin> snapshot = nullptr);

  /// Open a streaming cursor reusing a prepared plan.
  util::Result<MoleculeCursor> OpenCursorWithPlan(
      Query query, QueryPlan plan,
      std::shared_ptr<const std::atomic<bool>> invalidated = nullptr,
      std::shared_ptr<obs::StatementTrace> trace = nullptr,
      std::shared_ptr<access::VersionStore::Pin> snapshot = nullptr);

  /// Qualification only: resolve + scan + assemble + WHERE filter.
  util::Result<MoleculeSet> Qualify(const QueryPlan& plan, const Expr* where);

  /// Assemble the molecule rooted at `root` (public: used by DML and the
  /// semantic-parallelism processor).
  util::Result<Molecule> Assemble(const QueryPlan& plan,
                                  const access::Atom& root);

  /// Enumerate root-atom candidates via the plan's chosen access method
  /// (public: the semantic-parallelism processor decomposes on these).
  util::Result<std::vector<access::Atom>> Roots(const QueryPlan& plan) {
    return RootCandidates(plan);
  }

  /// Open an incremental root-candidate stream for the plan (what cursors
  /// pull from instead of materializing Roots()).
  util::Result<std::unique_ptr<RootSource>> OpenRootSource(
      const QueryPlan& plan);

  /// Attach the worker pool cursors pipeline molecule assembly over.
  /// `threads` bounds how many assemblies may be in flight per cursor;
  /// <= 1 (or a null pool) keeps cursors strictly serial. Results are
  /// byte-identical to serial either way.
  void SetAssemblyPool(util::ThreadPool* pool, size_t threads) {
    assembly_pool_ = pool;
    assembly_threads_ = threads;
  }
  util::ThreadPool* assembly_pool() const { return assembly_pool_; }
  size_t assembly_threads() const { return assembly_threads_; }

  /// Apply the SELECT clause to one qualified molecule (public: used by the
  /// semantic-parallelism processor).
  util::Result<Molecule> ProjectMolecule(const Query& query,
                                         const QueryPlan& plan,
                                         Molecule molecule) {
    return Project(query, plan, std::move(molecule));
  }

  /// Evaluate a WHERE expression on a molecule. `default_component`
  /// rebinds bare attribute names (empty = the root component); qualified
  /// projections evaluate their conditions in the projected component's
  /// scope.
  util::Result<bool> Eval(const Molecule& molecule, const Expr& expr,
                          const std::map<std::string, const access::Atom*>&
                              bindings,
                          const std::string& default_component = "") const;

  DataStats& stats() { return stats_; }
  access::AccessSystem* access() { return access_; }

 private:
  struct PathRef {
    const MoleculeGroup* group = nullptr;
    uint16_t attr = 0;
    std::vector<uint16_t> fields;
    int level = -1;
  };

  util::Result<PathRef> ResolvePath(const Molecule& molecule,
                                    const AttrPath& path) const;
  util::Result<std::vector<access::Value>> PathValues(
      const Molecule& molecule, const AttrPath& path,
      const std::map<std::string, const access::Atom*>& bindings,
      const std::string& default_component) const;

  /// Root-bound simple predicates from the top-level conjunction.
  struct RootPred {
    uint16_t attr;
    std::vector<uint16_t> fields;
    access::CompareOp op;
    access::Value operand;
    int param = -1;  ///< statement-parameter slot the operand came from
  };
  util::Status ExtractRootPreds(const Expr* where,
                                const ResolvedStructure& structure,
                                std::vector<RootPred>* out) const;

  util::Result<std::vector<access::Atom>> RootCandidates(const QueryPlan& plan);

  util::Result<Molecule> AssembleBfs(const ResolvedStructure& structure,
                                     const access::Atom& root);
  util::Result<Molecule> AssembleRecursive(const ResolvedStructure& structure,
                                           const access::Atom& root);
  util::Result<Molecule> AssembleFromCluster(const QueryPlan& plan,
                                             const access::Atom& root);

  util::Result<Molecule> Project(const Query& query, const QueryPlan& plan,
                                 Molecule molecule);

  access::AccessSystem* access_;
  SemanticAnalyzer analyzer_;
  DataStats stats_;
  util::ThreadPool* assembly_pool_ = nullptr;
  size_t assembly_threads_ = 1;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_EXECUTOR_H_
