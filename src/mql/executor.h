#ifndef PRIMA_MQL_EXECUTOR_H_
#define PRIMA_MQL_EXECUTOR_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "access/access_system.h"
#include "access/scan.h"
#include "mql/ast.h"
#include "mql/molecule.h"
#include "mql/semantics.h"

namespace prima::mql {

/// Counters of the data system (top of the Fig. 3.1 layer pyramid).
struct DataStats {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> molecules_built{0};
  std::atomic<uint64_t> cluster_assemblies{0};  ///< served from atom clusters
  std::atomic<uint64_t> bfs_assemblies{0};      ///< assembled by association chasing
  std::atomic<uint64_t> recursion_levels{0};
  std::atomic<uint64_t> key_lookups{0};
  std::atomic<uint64_t> access_path_scans{0};
  std::atomic<uint64_t> grid_scans{0};
  std::atomic<uint64_t> atom_type_scans{0};

  void Reset() {
    queries = molecules_built = cluster_assemblies = bfs_assemblies = 0;
    recursion_levels = key_lookups = access_path_scans = 0;
    grid_scans = atom_type_scans = 0;
  }
};

/// How the executor reaches the root atoms of the molecule set.
enum class RootAccess { kKeyLookup, kAccessPath, kGrid, kAtomTypeScan };

/// The prepared execution plan for one query (paper §3.1 "query
/// preparation"): root access selection with pushed-down qualifications,
/// the resolved hierarchical structure, and the cluster fast path decision.
struct QueryPlan {
  ResolvedStructure structure;
  RootAccess root_access = RootAccess::kAtomTypeScan;
  uint32_t access_structure_id = 0;
  std::vector<access::Value> eq_key;      ///< key lookup values
  access::KeyRange range;                 ///< access-path scan bounds
  std::vector<access::GridDimension> grid_dims;
  access::SearchArgument root_sarg;       ///< pushdown for scans
  bool use_cluster = false;
  uint32_t cluster_id = 0;
};

/// The molecule management of the data system (paper §3.1): derives whole
/// molecule sets via a molecule-type scan, assembling each molecule either
/// by association chasing or from a covering atom cluster.
class Executor {
 public:
  explicit Executor(access::AccessSystem* access)
      : access_(access), analyzer_(&access->catalog()) {}

  /// Plan a query (exposed so tests and benches can inspect decisions).
  util::Result<QueryPlan> Prepare(const FromClause& from, const Expr* where);

  /// Run a full query.
  util::Result<MoleculeSet> Run(const Query& query);

  /// Qualification only: resolve + scan + assemble + WHERE filter.
  util::Result<MoleculeSet> Qualify(const QueryPlan& plan, const Expr* where);

  /// Assemble the molecule rooted at `root` (public: used by DML and the
  /// semantic-parallelism processor).
  util::Result<Molecule> Assemble(const QueryPlan& plan,
                                  const access::Atom& root);

  /// Enumerate root-atom candidates via the plan's chosen access method
  /// (public: the semantic-parallelism processor decomposes on these).
  util::Result<std::vector<access::Atom>> Roots(const QueryPlan& plan) {
    return RootCandidates(plan);
  }

  /// Apply the SELECT clause to one qualified molecule (public: used by the
  /// semantic-parallelism processor).
  util::Result<Molecule> ProjectMolecule(const Query& query,
                                         const QueryPlan& plan,
                                         Molecule molecule) {
    return Project(query, plan, std::move(molecule));
  }

  /// Evaluate a WHERE expression on a molecule. `default_component`
  /// rebinds bare attribute names (empty = the root component); qualified
  /// projections evaluate their conditions in the projected component's
  /// scope.
  util::Result<bool> Eval(const Molecule& molecule, const Expr& expr,
                          const std::map<std::string, const access::Atom*>&
                              bindings,
                          const std::string& default_component = "") const;

  DataStats& stats() { return stats_; }
  access::AccessSystem* access() { return access_; }

 private:
  struct PathRef {
    const MoleculeGroup* group = nullptr;
    uint16_t attr = 0;
    std::vector<uint16_t> fields;
    int level = -1;
  };

  util::Result<PathRef> ResolvePath(const Molecule& molecule,
                                    const AttrPath& path) const;
  util::Result<std::vector<access::Value>> PathValues(
      const Molecule& molecule, const AttrPath& path,
      const std::map<std::string, const access::Atom*>& bindings,
      const std::string& default_component) const;

  /// Root-bound simple predicates from the top-level conjunction.
  struct RootPred {
    uint16_t attr;
    std::vector<uint16_t> fields;
    access::CompareOp op;
    access::Value operand;
  };
  util::Status ExtractRootPreds(const Expr* where,
                                const ResolvedStructure& structure,
                                std::vector<RootPred>* out) const;

  util::Result<std::vector<access::Atom>> RootCandidates(const QueryPlan& plan);

  util::Result<Molecule> AssembleBfs(const ResolvedStructure& structure,
                                     const access::Atom& root);
  util::Result<Molecule> AssembleRecursive(const ResolvedStructure& structure,
                                           const access::Atom& root);
  util::Result<Molecule> AssembleFromCluster(const QueryPlan& plan,
                                             const access::Atom& root);

  util::Result<Molecule> Project(const Query& query, const QueryPlan& plan,
                                 Molecule molecule);

  access::AccessSystem* access_;
  SemanticAnalyzer analyzer_;
  DataStats stats_;
};

}  // namespace prima::mql

#endif  // PRIMA_MQL_EXECUTOR_H_
