#ifndef PRIMA_NET_PROTOCOL_H_
#define PRIMA_NET_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "mql/data_system.h"
#include "mql/molecule.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::net {

/// PRIMA wire protocol: a length-prefixed, CRC-framed request/response
/// stream mapping 1:1 onto the core::Session API. One frame on the wire is
///
///   [len : u32] [kind : u8] [payload : len bytes] [crc : u32]
///
/// little-endian, with crc = CRC-32 over kind + payload (the same polynomial
/// as the page and WAL framing), so a torn or bit-flipped frame is rejected
/// before any payload decoding runs. Requests and replies alternate in
/// lockstep per connection; every connection starts with a versioned
/// handshake (kHello -> kHelloOk) and owns one server-side session, so
/// transaction and cursor state live on the server and an abort invalidates
/// remote cursors exactly as local ones.
///
/// Payloads reuse the kernel's wire-safe encodings: access::Value and
/// access::Atom serialize self-describing (molecule frames prefix each atom
/// with its attribute arity, so a client decodes result sets without the
/// catalog in hand).

inline constexpr uint32_t kHandshakeMagic = 0x50524D4Eu;  ///< "PRMN"
inline constexpr uint32_t kProtocolVersion = 1;

/// Wire form of core::Isolation — how a remote session's queries read.
/// Sent as one u8 (kSetIsolation, and the per-cursor override field of
/// kOpenCursor). Values are pinned: they are protocol, not an enum detail.
enum class Isolation : uint8_t {
  kLatestCommitted = 0,  ///< read the newest committed state (default)
  kSnapshot = 1,         ///< pin a consistent read view per cursor
};

/// Requests are statements and control messages — small. A frame claiming
/// more is malformed (and must be rejected BEFORE allocating the claimed
/// length, or a hostile header is a memory bomb).
inline constexpr uint32_t kMaxRequestFrame = 1u << 20;
/// Replies carry molecule batches; the server's fetch path additionally
/// bounds each batch by kFetchByteTarget well below this.
inline constexpr uint32_t kMaxReplyFrame = 64u << 20;
/// A fetch reply stops adding molecules once it crosses this many payload
/// bytes, whatever batch size the client asked for.
inline constexpr uint32_t kFetchByteTarget = 1u << 20;

enum class MsgKind : uint8_t {
  // Requests (client -> server).
  kHello = 1,           ///< u32 magic + u32 version
  kExecute = 2,         ///< string mql -> kResult
  kPrepare = 3,         ///< string mql -> kPrepared
  kBind = 4,            ///< u32 stmt, u8 by_name, index|name, Value -> kOk
  kExecutePrepared = 5, ///< u32 stmt -> kResult
  kOpenCursor = 6,      ///< u8 prepared, u32 stmt | string mql -> kCursorOpened
  kFetch = 7,           ///< u32 cursor, u32 max_n -> kMolecules
  kCloseCursor = 8,     ///< u32 cursor -> kOk
  kCloseStatement = 9,  ///< u32 stmt -> kOk
  kBeginWork = 10,      ///< -> kOk
  kCommitWork = 11,     ///< -> kOk
  kAbortWork = 12,      ///< -> kOk
  kStats = 13,          ///< -> kStatsReply
  kGoodbye = 14,        ///< -> kOk, then both sides close
  kMetrics = 15,        ///< -> kMetricsReply (Prometheus text exposition)
  kSetIsolation = 16,   ///< u8 isolation (Isolation enum) -> kOk

  // Replies (server -> client).
  kHelloOk = 64,        ///< u32 version + u64 connection id
  kOk = 65,             ///< empty
  kError = 66,          ///< u8 status code + string message
  kResult = 67,         ///< ExecResult
  kPrepared = 68,       ///< u32 stmt id + u32 param count
  kCursorOpened = 69,   ///< u32 cursor id
  kMolecules = 70,      ///< u8 done + varint n + n molecules
  kStatsReply = 71,     ///< ServerStats
  kMetricsReply = 72,   ///< string (Prima::MetricsText output)
};

/// One decoded frame.
struct Frame {
  MsgKind kind = MsgKind::kError;
  std::string payload;
};

// ---------------------------------------------------------------------------
// Socket framing. fd is a connected stream socket; all calls block (the
// server bounds them with poll-based idle timeouts). Errors:
//   IoError     - peer vanished / syscall failed (connection is dead)
//   Corruption  - CRC mismatch (stream integrity lost, close the connection)
//   InvalidArgument - frame length over `max_frame` (reject before reading)
// ---------------------------------------------------------------------------

util::Status WriteFrame(int fd, MsgKind kind, util::Slice payload);
util::Status ReadFrame(int fd, uint32_t max_frame, Frame* out);

// ---------------------------------------------------------------------------
// Payload encodings.
// ---------------------------------------------------------------------------

/// Status <-> wire: code byte + message. Unknown codes decode as IoError so
/// a newer server's error never reads as success.
void EncodeStatus(const util::Status& st, std::string* out);
util::Status DecodeStatus(util::Slice* in);

/// Atom with explicit arity (the catalog-free decode form).
void EncodeWireAtom(const access::Atom& atom, std::string* out);
util::Result<access::Atom> DecodeWireAtom(util::Slice* in);

void EncodeMolecule(const mql::Molecule& m, std::string* out);
util::Result<mql::Molecule> DecodeMolecule(util::Slice* in);

void EncodeMoleculeSet(const mql::MoleculeSet& set, std::string* out);
util::Result<mql::MoleculeSet> DecodeMoleculeSet(util::Slice* in);

void EncodeExecResult(const mql::ExecResult& r, std::string* out);
util::Result<mql::ExecResult> DecodeExecResult(util::Slice* in);

/// Server gauge snapshot, served by the kStats message. The WAL block is
/// the remote operator's wedged-ring view: a long-running transaction
/// pinning the undo floor shows up as active_txns > 0 with a far-behind
/// oldest_active_lsn while wal_live_bytes climbs toward wal_capacity_bytes.
struct ServerStats {
  // Connection front door.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_refused = 0;  ///< over max_connections
  uint64_t idle_closes = 0;
  // Session traffic through this server.
  uint64_t statements_executed = 0;
  uint64_t statements_prepared = 0;
  uint64_t cursors_opened = 0;
  uint64_t molecules_streamed = 0;
  // Shared statement cache (one-shot Execute's transparent prepared path).
  uint64_t stmt_cache_hits = 0;
  uint64_t stmt_cache_misses = 0;
  // WAL / wedged-ring gauge (Prima::wal_stats()).
  uint64_t wal_live_bytes = 0;
  uint64_t wal_capacity_bytes = 0;
  uint64_t wal_archived_bytes = 0;
  uint64_t commits_forced = 0;
  uint64_t auto_checkpoints = 0;
  uint64_t active_txns = 0;
  uint64_t oldest_active_lsn = 0;
  // Telemetry digest (appended fields 18-23: a pre-telemetry peer skips or
  // zero-fills them per the count-prefixed field-list evolution rule).
  uint64_t stmt_latency_p50_us = 0;
  uint64_t stmt_latency_p95_us = 0;
  uint64_t stmt_latency_p99_us = 0;
  uint64_t slow_statements = 0;    ///< slow-query log captures
  uint64_t traced_statements = 0;  ///< statements that carried a trace
  uint64_t net_request_p99_us = 0; ///< server-side request handling p99
  // Version-store health (appended fields 24-27, same evolution rule):
  // MVCC chains retained / snapshot reads resolved / pinned views / the WAL
  // LSN the oldest pin holds retirement at.
  uint64_t versions_retained = 0;
  uint64_t versions_resolved = 0;
  uint64_t snapshots_active = 0;
  uint64_t oldest_snapshot_lsn = 0;
  // Contention digest (appended fields 28-31, same evolution rule): lock
  // requests refused by the non-blocking 2PL, transaction outcomes, and
  // in-process driver retries — the per-tier conflict-rate view bench_mmo
  // reports for remote runs.
  uint64_t lock_conflicts = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t txn_retries = 0;
};

void EncodeServerStats(const ServerStats& s, std::string* out);
util::Result<ServerStats> DecodeServerStats(util::Slice* in);

}  // namespace prima::net

#endif  // PRIMA_NET_PROTOCOL_H_
