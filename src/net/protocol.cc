#include "net/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"

namespace prima::net {

using util::Result;
using util::Slice;
using util::Status;

namespace {

constexpr size_t kFrameHeader = 5;  // len:u32 + kind:u8

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not kill the server process with SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status ReadExact(int fd, char* data, size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("connection closed mid-frame");
    }
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFrame(int fd, MsgKind kind, Slice payload) {
  std::string frame;
  frame.reserve(kFrameHeader + payload.size() + 4);
  util::PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.push_back(static_cast<char>(kind));
  frame.append(payload.data(), payload.size());
  const uint32_t crc =
      util::Crc32(Slice(frame.data() + 4, 1 + payload.size()));
  util::PutFixed32(&frame, crc);
  return WriteAll(fd, frame.data(), frame.size());
}

Status ReadFrame(int fd, uint32_t max_frame, Frame* out) {
  char header[kFrameHeader];
  PRIMA_RETURN_IF_ERROR(ReadExact(fd, header, kFrameHeader));
  const uint32_t len = util::DecodeFixed32(header);
  if (len > max_frame) {
    // Reject on the header alone — a hostile length must never reach the
    // allocator. The caller closes the connection: the stream position is
    // lost for good once we refuse to consume the claimed bytes.
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(max_frame) + "-byte limit");
  }
  std::string body(static_cast<size_t>(len) + 4, '\0');
  PRIMA_RETURN_IF_ERROR(ReadExact(fd, body.data(), body.size()));
  uint32_t crc = util::Crc32(Slice(header + 4, 1));
  crc = util::Crc32Extend(crc, Slice(body.data(), len));
  if (crc != util::DecodeFixed32(body.data() + len)) {
    return Status::Corruption("frame checksum mismatch");
  }
  out->kind = static_cast<MsgKind>(header[4]);
  out->payload.assign(body.data(), len);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

void EncodeStatus(const Status& st, std::string* out) {
  out->push_back(static_cast<char>(st.code()));
  util::PutLengthPrefixed(out, st.message());
}

Status DecodeStatus(Slice* in) {
  if (in->empty()) return Status::Corruption("status truncated");
  const uint8_t code = static_cast<uint8_t>((*in)[0]);
  in->RemovePrefix(1);
  Slice msg_slice;
  if (!util::GetLengthPrefixed(in, &msg_slice)) {
    return Status::Corruption("status message truncated");
  }
  std::string m(msg_slice.data(), msg_slice.size());
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::Ok();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(m));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(m));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(m));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(m));
    case Status::Code::kNoSpace:
      return Status::NoSpace(std::move(m));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(m));
    case Status::Code::kConstraint:
      return Status::Constraint(std::move(m));
    case Status::Code::kConflict:
      return Status::Conflict(std::move(m));
    case Status::Code::kParseError:
      return Status::ParseError(std::move(m));
    case Status::Code::kIoError:
      return Status::IoError(std::move(m));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(m));
  }
  // A code this client does not know must never read as success.
  return Status::IoError("unknown remote status code " + std::to_string(code) +
                         ": " + m);
}

// ---------------------------------------------------------------------------
// Atoms / molecules / results
// ---------------------------------------------------------------------------

void EncodeWireAtom(const access::Atom& atom, std::string* out) {
  // Prefix the arity so the peer decodes without the catalog; the body is
  // the kernel's own self-describing atom encoding.
  util::PutVarint64(out, atom.attrs.size());
  atom.EncodeInto(out);
}

Result<access::Atom> DecodeWireAtom(Slice* in) {
  uint64_t arity;
  if (!util::GetVarint64(in, &arity)) {
    return Status::Corruption("atom arity truncated");
  }
  if (arity > 4096) return Status::Corruption("implausible atom arity");
  return access::Atom::Decode(in, static_cast<size_t>(arity));
}

void EncodeMolecule(const mql::Molecule& m, std::string* out) {
  util::PutVarint64(out, m.groups.size());
  for (const mql::MoleculeGroup& g : m.groups) {
    util::PutLengthPrefixed(out, g.component);
    util::PutVarint64(out, g.type);
    util::PutVarint64(out, g.atoms.size());
    for (const access::Atom& a : g.atoms) EncodeWireAtom(a, out);
  }
  util::PutVarint64(out, m.levels.size());
  for (const auto& level : m.levels) {
    util::PutVarint64(out, level.size());
    for (const access::Tid& t : level) util::PutFixed64(out, t.Pack());
  }
}

Result<mql::Molecule> DecodeMolecule(Slice* in) {
  mql::Molecule m;
  uint64_t groups;
  if (!util::GetVarint64(in, &groups)) {
    return Status::Corruption("molecule group count truncated");
  }
  for (uint64_t i = 0; i < groups; ++i) {
    mql::MoleculeGroup g;
    Slice name;
    uint64_t type, atoms;
    if (!util::GetLengthPrefixed(in, &name) ||
        !util::GetVarint64(in, &type) || !util::GetVarint64(in, &atoms)) {
      return Status::Corruption("molecule group header truncated");
    }
    g.component.assign(name.data(), name.size());
    g.type = static_cast<access::AtomTypeId>(type);
    for (uint64_t j = 0; j < atoms; ++j) {
      PRIMA_ASSIGN_OR_RETURN(access::Atom atom, DecodeWireAtom(in));
      g.atoms.push_back(std::move(atom));
    }
    m.groups.push_back(std::move(g));
  }
  uint64_t levels;
  if (!util::GetVarint64(in, &levels)) {
    return Status::Corruption("molecule level count truncated");
  }
  for (uint64_t i = 0; i < levels; ++i) {
    uint64_t n;
    if (!util::GetVarint64(in, &n)) {
      return Status::Corruption("molecule level truncated");
    }
    std::vector<access::Tid> level;
    for (uint64_t j = 0; j < n; ++j) {
      uint64_t packed;
      if (!util::GetFixed64(in, &packed)) {
        return Status::Corruption("molecule level tid truncated");
      }
      level.push_back(access::Tid::Unpack(packed));
    }
    m.levels.push_back(std::move(level));
  }
  return m;
}

void EncodeMoleculeSet(const mql::MoleculeSet& set, std::string* out) {
  util::PutVarint64(out, set.molecules.size());
  for (const mql::Molecule& m : set.molecules) EncodeMolecule(m, out);
}

Result<mql::MoleculeSet> DecodeMoleculeSet(Slice* in) {
  mql::MoleculeSet set;
  uint64_t n;
  if (!util::GetVarint64(in, &n)) {
    return Status::Corruption("molecule set count truncated");
  }
  for (uint64_t i = 0; i < n; ++i) {
    PRIMA_ASSIGN_OR_RETURN(mql::Molecule m, DecodeMolecule(in));
    set.molecules.push_back(std::move(m));
  }
  return set;
}

void EncodeExecResult(const mql::ExecResult& r, std::string* out) {
  out->push_back(static_cast<char>(r.kind));
  switch (r.kind) {
    case mql::ExecResult::Kind::kMolecules:
      EncodeMoleculeSet(r.molecules, out);
      break;
    case mql::ExecResult::Kind::kTid:
      util::PutFixed64(out, r.tid.Pack());
      break;
    case mql::ExecResult::Kind::kCount:
      util::PutVarint64(out, r.count);
      break;
    case mql::ExecResult::Kind::kText:
      util::PutLengthPrefixed(out, r.text);
      break;
    case mql::ExecResult::Kind::kNone:
      break;
  }
}

Result<mql::ExecResult> DecodeExecResult(Slice* in) {
  if (in->empty()) return Status::Corruption("result kind truncated");
  const uint8_t kind = static_cast<uint8_t>((*in)[0]);
  in->RemovePrefix(1);
  mql::ExecResult r;
  switch (static_cast<mql::ExecResult::Kind>(kind)) {
    case mql::ExecResult::Kind::kMolecules: {
      r.kind = mql::ExecResult::Kind::kMolecules;
      PRIMA_ASSIGN_OR_RETURN(r.molecules, DecodeMoleculeSet(in));
      break;
    }
    case mql::ExecResult::Kind::kTid: {
      r.kind = mql::ExecResult::Kind::kTid;
      uint64_t packed;
      if (!util::GetFixed64(in, &packed)) {
        return Status::Corruption("result tid truncated");
      }
      r.tid = access::Tid::Unpack(packed);
      break;
    }
    case mql::ExecResult::Kind::kCount: {
      r.kind = mql::ExecResult::Kind::kCount;
      if (!util::GetVarint64(in, &r.count)) {
        return Status::Corruption("result count truncated");
      }
      break;
    }
    case mql::ExecResult::Kind::kText: {
      r.kind = mql::ExecResult::Kind::kText;
      Slice text;
      if (!util::GetLengthPrefixed(in, &text)) {
        return Status::Corruption("result text truncated");
      }
      r.text.assign(text.data(), text.size());
      break;
    }
    case mql::ExecResult::Kind::kNone:
      r.kind = mql::ExecResult::Kind::kNone;
      break;
    default:
      return Status::Corruption("unknown result kind");
  }
  return r;
}

// ---------------------------------------------------------------------------
// Server stats
// ---------------------------------------------------------------------------

namespace {
constexpr size_t kStatsFields = 31;

/// Stats fields in wire order. Appending a field (and bumping kStatsFields)
/// stays compatible both ways: the leading count lets an older peer skip
/// what it does not know and a newer peer zero-fill what it did not get.
std::vector<uint64_t> StatsFieldList(const ServerStats& s) {
  return {s.connections_accepted, s.connections_active, s.connections_refused,
          s.idle_closes,          s.statements_executed, s.statements_prepared,
          s.cursors_opened,       s.molecules_streamed,  s.stmt_cache_hits,
          s.stmt_cache_misses,    s.wal_live_bytes,      s.wal_capacity_bytes,
          s.wal_archived_bytes,   s.commits_forced,      s.auto_checkpoints,
          s.active_txns,          s.oldest_active_lsn,   s.stmt_latency_p50_us,
          s.stmt_latency_p95_us,  s.stmt_latency_p99_us, s.slow_statements,
          s.traced_statements,    s.net_request_p99_us,  s.versions_retained,
          s.versions_resolved,    s.snapshots_active,    s.oldest_snapshot_lsn,
          s.lock_conflicts,       s.txns_committed,      s.txns_aborted,
          s.txn_retries};
}
}  // namespace

void EncodeServerStats(const ServerStats& s, std::string* out) {
  const std::vector<uint64_t> fields = StatsFieldList(s);
  util::PutVarint64(out, fields.size());
  for (const uint64_t f : fields) util::PutVarint64(out, f);
}

Result<ServerStats> DecodeServerStats(Slice* in) {
  uint64_t count;
  if (!util::GetVarint64(in, &count)) {
    return Status::Corruption("stats field count truncated");
  }
  if (count > 1024) return Status::Corruption("implausible stats field count");
  uint64_t fields[kStatsFields] = {};
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t v;
    if (!util::GetVarint64(in, &v)) {
      return Status::Corruption("stats field truncated");
    }
    // A newer server may append fields; decode the ones this build knows.
    if (i < kStatsFields) fields[i] = v;
  }
  ServerStats s;
  size_t i = 0;
  s.connections_accepted = fields[i++];
  s.connections_active = fields[i++];
  s.connections_refused = fields[i++];
  s.idle_closes = fields[i++];
  s.statements_executed = fields[i++];
  s.statements_prepared = fields[i++];
  s.cursors_opened = fields[i++];
  s.molecules_streamed = fields[i++];
  s.stmt_cache_hits = fields[i++];
  s.stmt_cache_misses = fields[i++];
  s.wal_live_bytes = fields[i++];
  s.wal_capacity_bytes = fields[i++];
  s.wal_archived_bytes = fields[i++];
  s.commits_forced = fields[i++];
  s.auto_checkpoints = fields[i++];
  s.active_txns = fields[i++];
  s.oldest_active_lsn = fields[i++];
  s.stmt_latency_p50_us = fields[i++];
  s.stmt_latency_p95_us = fields[i++];
  s.stmt_latency_p99_us = fields[i++];
  s.slow_statements = fields[i++];
  s.traced_statements = fields[i++];
  s.net_request_p99_us = fields[i++];
  s.versions_retained = fields[i++];
  s.versions_resolved = fields[i++];
  s.snapshots_active = fields[i++];
  s.oldest_snapshot_lsn = fields[i++];
  s.lock_conflicts = fields[i++];
  s.txns_committed = fields[i++];
  s.txns_aborted = fields[i++];
  s.txn_retries = fields[i++];
  return s;
}

}  // namespace prima::net
