#ifndef PRIMA_NET_SERVER_H_
#define PRIMA_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "util/status.h"

namespace prima::core {
class Prima;
}

namespace prima::net {

struct ServerOptions {
  /// TCP port to listen on (0 = let the kernel pick an ephemeral port —
  /// read it back via Server::port()). Listens on all interfaces.
  uint16_t port = 0;
  /// Accepted connections beyond this are refused with an error frame
  /// before the handshake (0 = unlimited).
  uint32_t max_connections = 256;
  /// A connection idle (no request frame) longer than this is closed and
  /// its session drained — the open transaction rolls back logged, open
  /// cursors die with the session (0 = never).
  uint32_t idle_timeout_ms = 0;
  /// Per-connection caps on concurrently open server-side objects; a
  /// client leaking statement or cursor ids hits NoSpace instead of
  /// growing the server without bound.
  uint32_t max_statements = 1024;
  uint32_t max_cursors = 1024;
};

/// The TCP front door: accepts connections and speaks the framed protocol
/// of net/protocol.h, thread-per-connection. Each connection owns exactly
/// one core::Session (plus its prepared statements and cursors), so
/// transaction and cursor state live server-side: BEGIN WORK holds locks
/// across round trips, an ABORT WORK invalidates the connection's remote
/// cursors exactly as local ones, and a connection that dies — or a server
/// drain on Stop() — rolls its open transaction back through the session
/// destructor, logged, so a killed server recovers like any crash and
/// acknowledged commits alone survive.
class Server {
 public:
  /// `db` must outlive the server; Prima wires this up when
  /// PrimaOptions::listen_port is set and stops the server first in ~Prima.
  Server(core::Prima* db, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept loop. Fails if the port is taken.
  util::Status Start();

  /// Drain: stop accepting, shut every connection's socket down, join all
  /// connection threads (their sessions roll open transactions back), then
  /// release the listener. Idempotent.
  void Stop();

  /// The bound port (after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the server-side counters + the database's WAL gauge (the
  /// same payload the kStats message serves).
  ServerStats Stats() const;

 private:
  struct Conn;

  void AcceptLoop();
  void ServeConnection(Conn* conn);
  /// Join and drop finished connection slots (called from the accept loop
  /// so a long-lived server does not accumulate dead threads).
  void ReapFinishedLocked();

  core::Prima* const db_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  // Counters behind Stats().
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> idle_closes_{0};
  std::atomic<uint64_t> statements_executed_{0};
  std::atomic<uint64_t> statements_prepared_{0};
  std::atomic<uint64_t> cursors_opened_{0};
  std::atomic<uint64_t> molecules_streamed_{0};
};

}  // namespace prima::net

#endif  // PRIMA_NET_SERVER_H_
