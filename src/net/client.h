#ifndef PRIMA_NET_CLIENT_H_
#define PRIMA_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "net/protocol.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::net {

class RemoteStatement;
class RemoteCursor;

/// Thin client for the PRIMA wire protocol, mapping 1:1 onto the
/// core::Session API: one Client is one connection is one server-side
/// session, so BEGIN WORK on the client holds its transaction open across
/// round trips and ABORT WORK invalidates the connection's remote cursors.
/// Like a Session, a Client is a single-threaded context — one per client
/// thread. RemoteStatement and RemoteCursor handles borrow the Client and
/// must not outlive it (they address per-connection server state, so they
/// are meaningless on any other connection anyway).
///
///   auto client = *Client::Connect("127.0.0.1", port);
///   client->Execute("BEGIN WORK");
///   auto stmt = *client->Prepare("INSERT point (x = ?)");
///   stmt.Bind(0, access::Value::Real(1.5));
///   stmt.Execute();
///   client->Execute("COMMIT WORK");
///   auto cursor = *client->OpenCursor("SELECT ALL FROM point");
///   while (auto m = *cursor.Next()) { /* streamed in server-side batches */ }
class Client {
 public:
  /// Connect + versioned handshake. `host` is a name or numeric address.
  static util::Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                       uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One round trip: parse and execute one MQL statement server-side
  /// (DDL, DML, query, or BEGIN/COMMIT/ABORT WORK). SELECT results come
  /// back materialized; use OpenCursor to stream instead.
  util::Result<mql::ExecResult> Execute(const std::string& mql);

  /// Transaction control (sugar over the dedicated message kinds).
  /// Begin(true) opens BEGIN WORK READ ONLY — a pinned-snapshot transaction
  /// whose queries all read one consistent view and whose DML/DDL are
  /// refused. Sent as statement text, so a pre-snapshot server rejects it
  /// with a parse error instead of silently opening a read-write
  /// transaction.
  util::Status Begin(bool read_only = false);
  util::Status Commit();
  util::Status Abort();

  /// Default isolation for this connection's queries (same contract as
  /// core::Session::set_default_isolation): one round trip, applies to
  /// cursors opened afterwards.
  util::Status set_default_isolation(Isolation isolation);

  /// Compile a statement server-side for repeated execution with `?` /
  /// `:name` placeholders.
  util::Result<RemoteStatement> Prepare(const std::string& mql);

  /// Open a server-side streaming cursor over a SELECT; molecules arrive
  /// in batches of `batch_size` (further bounded server-side by bytes).
  /// `isolation` overrides the connection default for this one cursor.
  util::Result<RemoteCursor> OpenCursor(
      const std::string& mql, uint32_t batch_size = 128,
      std::optional<Isolation> isolation = std::nullopt);

  /// Server + WAL gauge snapshot (the wedged-ring view on the wire).
  util::Result<ServerStats> Stats();

  /// The server's full metrics page (Prima::MetricsText — Prometheus-style
  /// text exposition), for remote scraping.
  util::Result<std::string> MetricsText();

  /// Polite goodbye; the server rolls back an open transaction. The
  /// destructor just drops the socket, which has the same server-side
  /// effect without the round trip.
  util::Status Close();

  bool connected() const { return fd_ >= 0; }
  /// Server-assigned connection id from the handshake.
  uint64_t connection_id() const { return connection_id_; }

 private:
  friend class RemoteStatement;
  friend class RemoteCursor;
  Client() = default;

  /// Send one request, read one reply. A kError reply decodes into the
  /// returned status; a reply of any kind other than `expect` is a
  /// protocol violation and poisons the connection.
  util::Result<Frame> RoundTrip(MsgKind kind, util::Slice payload,
                                MsgKind expect);

  int fd_ = -1;
  uint64_t connection_id_ = 0;
};

/// Client handle to a server-side prepared statement.
class RemoteStatement {
 public:
  RemoteStatement(RemoteStatement&&) = default;
  RemoteStatement& operator=(RemoteStatement&&) = default;

  uint32_t param_count() const { return param_count_; }

  /// Bind by 0-based placeholder position / by `:name`.
  util::Status Bind(uint32_t index, const access::Value& value);
  util::Status Bind(const std::string& name, const access::Value& value);

  /// Execute with the current bindings (one round trip).
  util::Result<mql::ExecResult> Execute();
  /// Open a streaming cursor over the bound SELECT. `isolation` overrides
  /// the connection default for this one open.
  util::Result<RemoteCursor> Query(
      uint32_t batch_size = 128,
      std::optional<Isolation> isolation = std::nullopt);

  /// Release the server-side statement. Closing twice reports NotFound
  /// (the server rejects the stale id cleanly).
  util::Status Close();

 private:
  friend class Client;
  RemoteStatement(Client* client, uint32_t id, uint32_t param_count)
      : client_(client), id_(id), param_count_(param_count) {}

  Client* client_;
  uint32_t id_;
  uint32_t param_count_;
};

/// Client handle to a server-side molecule cursor. Next() refills from the
/// server in batches; an ABORT WORK (or any rollback) server-side makes the
/// next fetch fail with Aborted, exactly like a local MoleculeCursor.
class RemoteCursor {
 public:
  RemoteCursor(RemoteCursor&&) = default;
  RemoteCursor& operator=(RemoteCursor&&) = default;

  /// Next molecule, or nullopt when the result set is drained.
  util::Result<std::optional<mql::Molecule>> Next();

  /// Release the server-side cursor. Closing twice reports NotFound.
  util::Status Close();

 private:
  friend class Client;
  friend class RemoteStatement;
  RemoteCursor(Client* client, uint32_t id, uint32_t batch_size)
      : client_(client), id_(id), batch_size_(batch_size) {}

  Client* client_;
  uint32_t id_;
  uint32_t batch_size_;
  std::deque<mql::Molecule> buffer_;
  bool server_done_ = false;
};

}  // namespace prima::net

#endif  // PRIMA_NET_CLIENT_H_
