#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/coding.h"

namespace prima::net {

using util::Result;
using util::Slice;
using util::Status;

// --- Client ----------------------------------------------------------------

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                &hints, &res);
  if (gai != 0) {
    return Status::IoError(std::string("resolve ") + host + ": " +
                           ::gai_strerror(gai));
  }
  int fd = -1;
  int last_errno = ECONNREFUSED;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::IoError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(last_errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<Client>(new Client());
  client->fd_ = fd;
  std::string hello;
  util::PutFixed32(&hello, kHandshakeMagic);
  util::PutFixed32(&hello, kProtocolVersion);
  Result<Frame> reply =
      client->RoundTrip(MsgKind::kHello, hello, MsgKind::kHelloOk);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  uint32_t version = 0;
  uint64_t conn_id = 0;
  if (!util::GetFixed32(&in, &version) || !util::GetFixed64(&in, &conn_id)) {
    return Status::Corruption("malformed handshake reply");
  }
  client->connection_id_ = conn_id;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Frame> Client::RoundTrip(MsgKind kind, Slice payload, MsgKind expect) {
  if (fd_ < 0) return Status::IoError("client is not connected");
  Status st = WriteFrame(fd_, kind, payload);
  if (st.ok()) {
    Frame reply;
    st = ReadFrame(fd_, kMaxReplyFrame, &reply);
    if (st.ok()) {
      if (reply.kind == MsgKind::kError) {
        Slice in(reply.payload);
        return DecodeStatus(&in);
      }
      if (reply.kind != expect) {
        st = Status::Corruption(
            "protocol violation: unexpected reply kind " +
            std::to_string(static_cast<int>(reply.kind)));
      } else {
        return reply;
      }
    }
  }
  // A transport or framing failure desynchronizes request/reply lockstep;
  // drop the socket so later calls fail fast instead of misparsing.
  ::close(fd_);
  fd_ = -1;
  return st;
}

Result<mql::ExecResult> Client::Execute(const std::string& mql) {
  Result<Frame> reply = RoundTrip(MsgKind::kExecute, mql, MsgKind::kResult);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  return DecodeExecResult(&in);
}

namespace {
/// Trailing field list of kOpenCursor forms 1 and 2 (count-prefixed
/// varints; field 0 = isolation override encoded +1, 0 = none).
void AppendCursorFields(std::optional<Isolation> isolation,
                        std::string* payload) {
  util::PutVarint64(payload, 1);
  util::PutVarint64(
      payload, isolation.has_value()
                   ? (*isolation == Isolation::kSnapshot ? 2u : 1u)
                   : 0u);
}
}  // namespace

Status Client::Begin(bool read_only) {
  if (read_only) {
    return Execute("BEGIN WORK READ ONLY").status();
  }
  return RoundTrip(MsgKind::kBeginWork, {}, MsgKind::kOk).status();
}
Status Client::Commit() {
  return RoundTrip(MsgKind::kCommitWork, {}, MsgKind::kOk).status();
}
Status Client::Abort() {
  return RoundTrip(MsgKind::kAbortWork, {}, MsgKind::kOk).status();
}

Result<RemoteStatement> Client::Prepare(const std::string& mql) {
  Result<Frame> reply = RoundTrip(MsgKind::kPrepare, mql, MsgKind::kPrepared);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  uint32_t id = 0, params = 0;
  if (!util::GetFixed32(&in, &id) || !util::GetFixed32(&in, &params)) {
    return Status::Corruption("malformed prepare reply");
  }
  return RemoteStatement(this, id, params);
}

Status Client::set_default_isolation(Isolation isolation) {
  std::string payload;
  payload.push_back(static_cast<char>(isolation));
  return RoundTrip(MsgKind::kSetIsolation, payload, MsgKind::kOk).status();
}

Result<RemoteCursor> Client::OpenCursor(const std::string& mql,
                                        uint32_t batch_size,
                                        std::optional<Isolation> isolation) {
  std::string payload;
  if (isolation.has_value()) {
    // Form 2: length-prefixed text + trailing field list. Only used when
    // there is something to say — the legacy form 0 (bare text) keeps
    // working against any server.
    payload.push_back(2);
    util::PutLengthPrefixed(&payload, mql);
    AppendCursorFields(isolation, &payload);
  } else {
    payload.push_back(0);  // not prepared: the rest is statement text
    payload.append(mql);
  }
  Result<Frame> reply =
      RoundTrip(MsgKind::kOpenCursor, payload, MsgKind::kCursorOpened);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  uint32_t id = 0;
  if (!util::GetFixed32(&in, &id)) {
    return Status::Corruption("malformed cursor reply");
  }
  return RemoteCursor(this, id, batch_size == 0 ? 1 : batch_size);
}

Result<ServerStats> Client::Stats() {
  Result<Frame> reply = RoundTrip(MsgKind::kStats, {}, MsgKind::kStatsReply);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  return DecodeServerStats(&in);
}

Result<std::string> Client::MetricsText() {
  Result<Frame> reply =
      RoundTrip(MsgKind::kMetrics, {}, MsgKind::kMetricsReply);
  if (!reply.ok()) return reply.status();
  return std::move(reply->payload);
}

Status Client::Close() {
  if (fd_ < 0) return Status::Ok();
  const Status st = RoundTrip(MsgKind::kGoodbye, {}, MsgKind::kOk).status();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return st;
}

// --- RemoteStatement -------------------------------------------------------

Status RemoteStatement::Bind(uint32_t index, const access::Value& value) {
  std::string payload;
  util::PutFixed32(&payload, id_);
  payload.push_back(0);  // by index
  util::PutFixed32(&payload, index);
  value.EncodeInto(&payload);
  return client_->RoundTrip(MsgKind::kBind, payload, MsgKind::kOk).status();
}

Status RemoteStatement::Bind(const std::string& name,
                             const access::Value& value) {
  std::string payload;
  util::PutFixed32(&payload, id_);
  payload.push_back(1);  // by name
  util::PutLengthPrefixed(&payload, name);
  value.EncodeInto(&payload);
  return client_->RoundTrip(MsgKind::kBind, payload, MsgKind::kOk).status();
}

Result<mql::ExecResult> RemoteStatement::Execute() {
  std::string payload;
  util::PutFixed32(&payload, id_);
  Result<Frame> reply =
      client_->RoundTrip(MsgKind::kExecutePrepared, payload, MsgKind::kResult);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  return DecodeExecResult(&in);
}

Result<RemoteCursor> RemoteStatement::Query(
    uint32_t batch_size, std::optional<Isolation> isolation) {
  std::string payload;
  payload.push_back(1);  // prepared
  util::PutFixed32(&payload, id_);
  // Trailing fields: a pre-snapshot server stops after the statement id
  // and ignores these (its decode reads exactly what it knows).
  AppendCursorFields(isolation, &payload);
  Result<Frame> reply =
      client_->RoundTrip(MsgKind::kOpenCursor, payload, MsgKind::kCursorOpened);
  if (!reply.ok()) return reply.status();
  Slice in(reply->payload);
  uint32_t id = 0;
  if (!util::GetFixed32(&in, &id)) {
    return Status::Corruption("malformed cursor reply");
  }
  return RemoteCursor(client_, id, batch_size == 0 ? 1 : batch_size);
}

Status RemoteStatement::Close() {
  std::string payload;
  util::PutFixed32(&payload, id_);
  return client_->RoundTrip(MsgKind::kCloseStatement, payload, MsgKind::kOk)
      .status();
}

// --- RemoteCursor ----------------------------------------------------------

Result<std::optional<mql::Molecule>> RemoteCursor::Next() {
  if (buffer_.empty() && !server_done_) {
    std::string payload;
    util::PutFixed32(&payload, id_);
    util::PutFixed32(&payload, batch_size_);
    Result<Frame> reply =
        client_->RoundTrip(MsgKind::kFetch, payload, MsgKind::kMolecules);
    if (!reply.ok()) return reply.status();
    Slice in(reply->payload);
    if (in.empty()) return Status::Corruption("malformed fetch reply");
    server_done_ = in[0] != 0;
    in.RemovePrefix(1);
    uint64_t n = 0;
    if (!util::GetVarint64(&in, &n)) {
      return Status::Corruption("malformed fetch reply");
    }
    for (uint64_t i = 0; i < n; ++i) {
      Result<mql::Molecule> m = DecodeMolecule(&in);
      if (!m.ok()) return m.status();
      buffer_.push_back(std::move(*m));
    }
  }
  if (buffer_.empty()) return std::optional<mql::Molecule>();
  std::optional<mql::Molecule> out(std::move(buffer_.front()));
  buffer_.pop_front();
  return out;
}

Status RemoteCursor::Close() {
  std::string payload;
  util::PutFixed32(&payload, id_);
  buffer_.clear();
  server_done_ = true;
  return client_->RoundTrip(MsgKind::kCloseCursor, payload, MsgKind::kOk)
      .status();
}

}  // namespace prima::net
