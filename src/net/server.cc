#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>

#include "core/prima.h"
#include "obs/telemetry.h"
#include "util/coding.h"

namespace prima::net {

using util::Result;
using util::Slice;
using util::Status;

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Wait for a readable byte (or peer close) with an optional timeout.
/// Returns Ok when readable, NotFound on timeout, IoError on poll failure.
Status WaitReadable(int fd, uint32_t timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms == 0 ? -1
                                                  : static_cast<int>(timeout_ms));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (r == 0) return Status::NotFound("idle timeout");
    return Status::Ok();  // POLLIN / POLLHUP / POLLERR all unblock the read
  }
}

Status SendError(int fd, const Status& st) {
  std::string payload;
  EncodeStatus(st, &payload);
  return WriteFrame(fd, MsgKind::kError, payload);
}

}  // namespace

/// Per-connection state. The socket fd is owned by the SERVER: the serving
/// thread only ever shutdown()s it, and close() happens strictly after the
/// thread is joined — so Stop()'s wake-up shutdown can never race a close
/// that recycled the descriptor to another connection.
struct Server::Conn {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

Server::Server(core::Prima* db, ServerOptions options)
    : db_(db), options_(options) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  stopping_.store(false, std::memory_order_release);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loop: shutdown makes the blocking accept() fail
  // immediately; the fd itself is closed only after the thread is gone.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake every serving thread out of its poll/read; the threads then run
    // their normal drain path (open transaction rolls back through the
    // session destructor, logged, before the thread finishes).
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.back());
      conns_.pop_back();
    }
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::ReapFinishedLocked() {
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done.load(std::memory_order_acquire)) {
      std::unique_ptr<Conn> conn = std::move(conns_[i]);
      conns_[i] = std::move(conns_.back());
      conns_.pop_back();
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    } else {
      ++i;
    }
  }
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion: back off instead of spinning; pending
        // clients wait in the listen backlog.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener gone (shutdown) or unrecoverable
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinishedLocked();
    if (options_.max_connections != 0 &&
        conns_.size() >= options_.max_connections) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      (void)SendError(fd, Status::NoSpace(
                              "server connection limit (" +
                              std::to_string(options_.max_connections) +
                              ") reached"));
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void Server::ServeConnection(Conn* conn) {
  const int fd = conn->fd;
  SetNoDelay(fd);
  connections_active_.fetch_add(1, std::memory_order_relaxed);

  // --- versioned handshake -------------------------------------------------
  bool ok = false;
  do {
    if (!WaitReadable(fd, options_.idle_timeout_ms).ok()) break;
    Frame hello;
    if (!ReadFrame(fd, kMaxRequestFrame, &hello).ok()) break;
    if (hello.kind != MsgKind::kHello) {
      (void)SendError(fd, Status::InvalidArgument(
                              "expected a hello frame to open the session"));
      break;
    }
    Slice in(hello.payload);
    uint32_t magic = 0, version = 0;
    if (!util::GetFixed32(&in, &magic) || !util::GetFixed32(&in, &version) ||
        magic != kHandshakeMagic) {
      (void)SendError(fd, Status::InvalidArgument("malformed hello frame"));
      break;
    }
    if (version != kProtocolVersion) {
      (void)SendError(
          fd, Status::NotSupported(
                  "protocol version " + std::to_string(version) +
                  " not supported (server speaks " +
                  std::to_string(kProtocolVersion) + ")"));
      break;
    }
    std::string reply;
    util::PutFixed32(&reply, kProtocolVersion);
    util::PutFixed64(&reply,
                     connections_accepted_.load(std::memory_order_relaxed));
    if (!WriteFrame(fd, MsgKind::kHelloOk, reply).ok()) break;
    ok = true;
  } while (false);

  if (ok) {
    // --- session + request loop -------------------------------------------
    // Everything a remote client owns lives in this scope: the session
    // (transaction state), prepared statements, and open cursors. Leaving
    // the scope — clean goodbye, protocol violation, disconnect, or server
    // drain — destroys them in order: cursors and statements first (both
    // borrow the session), then the session, whose destructor rolls an
    // open transaction back LOGGED. A connection that vanishes therefore
    // leaves exactly its acknowledged commits behind.
    std::unique_ptr<core::Session> session = db_->OpenSession();
    std::map<uint32_t, core::PreparedStatement> statements;
    std::map<uint32_t, mql::MoleculeCursor> cursors;
    uint32_t next_stmt_id = 1, next_cursor_id = 1;
    obs::Telemetry* tel = db_->telemetry();

    for (;;) {
      const Status waited = WaitReadable(fd, options_.idle_timeout_ms);
      if (!waited.ok()) {
        if (waited.IsNotFound()) {
          idle_closes_.fetch_add(1, std::memory_order_relaxed);
          (void)SendError(fd, Status::Aborted("idle timeout - closing"));
        }
        break;
      }
      Frame req;
      const Status read = ReadFrame(fd, kMaxRequestFrame, &req);
      if (!read.ok()) {
        // Oversized or corrupt frames get a best-effort error reply, but
        // the stream position is unrecoverable — close. A plain
        // disconnect (IoError) just closes.
        if (!read.IsIoError()) (void)SendError(fd, read);
        break;
      }
      Slice in(req.payload);
      bool close_conn = false;
      // Request-handling latency: decode + execute + encode + write, i.e.
      // what the client waits for beyond the network itself.
      const uint64_t req_t0 = tel != nullptr ? obs::NowNs() : 0;

      switch (req.kind) {
        case MsgKind::kExecute: {
          statements_executed_.fetch_add(1, std::memory_order_relaxed);
          Result<mql::ExecResult> result =
              session->Execute(std::string(in.data(), in.size()));
          if (!result.ok()) {
            close_conn = !SendError(fd, result.status()).ok();
            break;
          }
          if (result->kind == mql::ExecResult::Kind::kMolecules) {
            molecules_streamed_.fetch_add(result->molecules.size(),
                                          std::memory_order_relaxed);
          }
          const uint64_t enc_t0 = tel != nullptr ? obs::NowNs() : 0;
          std::string payload;
          EncodeExecResult(*result, &payload);
          close_conn = !WriteFrame(fd, MsgKind::kResult, payload).ok();
          if (tel != nullptr) {
            tel->net_encode_us()->Record((obs::NowNs() - enc_t0) / 1000);
          }
          break;
        }

        case MsgKind::kPrepare: {
          if (statements.size() >= options_.max_statements) {
            close_conn =
                !SendError(fd, Status::NoSpace(
                                   "too many open prepared statements"))
                     .ok();
            break;
          }
          Result<core::PreparedStatement> stmt =
              session->Prepare(std::string(in.data(), in.size()));
          if (!stmt.ok()) {
            close_conn = !SendError(fd, stmt.status()).ok();
            break;
          }
          statements_prepared_.fetch_add(1, std::memory_order_relaxed);
          const uint32_t id = next_stmt_id++;
          const uint32_t params =
              static_cast<uint32_t>(stmt->param_count());
          statements.emplace(id, std::move(*stmt));
          std::string payload;
          util::PutFixed32(&payload, id);
          util::PutFixed32(&payload, params);
          close_conn = !WriteFrame(fd, MsgKind::kPrepared, payload).ok();
          break;
        }

        case MsgKind::kBind: {
          uint32_t id = 0;
          if (!util::GetFixed32(&in, &id) || in.empty()) {
            close_conn =
                !SendError(fd,
                           Status::InvalidArgument("malformed bind frame"))
                     .ok();
            break;
          }
          const uint8_t by_name = static_cast<uint8_t>(in[0]);
          in.RemovePrefix(1);
          auto it = statements.find(id);
          if (it == statements.end()) {
            close_conn = !SendError(fd, Status::NotFound(
                                            "no prepared statement with id " +
                                            std::to_string(id)))
                              .ok();
            break;
          }
          Status bound;
          if (by_name) {
            Slice name;
            if (!util::GetLengthPrefixed(&in, &name)) {
              bound = Status::InvalidArgument("malformed bind frame");
            } else {
              Result<access::Value> v = access::Value::Decode(&in);
              bound = v.ok() ? it->second.Bind(
                                   std::string(name.data(), name.size()),
                                   std::move(*v))
                             : v.status();
            }
          } else {
            uint32_t index = 0;
            if (!util::GetFixed32(&in, &index)) {
              bound = Status::InvalidArgument("malformed bind frame");
            } else {
              Result<access::Value> v = access::Value::Decode(&in);
              bound = v.ok() ? it->second.Bind(index, std::move(*v))
                             : v.status();
            }
          }
          close_conn = !(bound.ok() ? WriteFrame(fd, MsgKind::kOk, {})
                                    : SendError(fd, bound))
                            .ok();
          break;
        }

        case MsgKind::kExecutePrepared: {
          uint32_t id = 0;
          if (!util::GetFixed32(&in, &id)) {
            close_conn =
                !SendError(fd,
                           Status::InvalidArgument("malformed execute frame"))
                     .ok();
            break;
          }
          auto it = statements.find(id);
          if (it == statements.end()) {
            close_conn = !SendError(fd, Status::NotFound(
                                            "no prepared statement with id " +
                                            std::to_string(id)))
                              .ok();
            break;
          }
          statements_executed_.fetch_add(1, std::memory_order_relaxed);
          Result<mql::ExecResult> result = it->second.Execute();
          if (!result.ok()) {
            close_conn = !SendError(fd, result.status()).ok();
            break;
          }
          if (result->kind == mql::ExecResult::Kind::kMolecules) {
            molecules_streamed_.fetch_add(result->molecules.size(),
                                          std::memory_order_relaxed);
          }
          const uint64_t enc_t0 = tel != nullptr ? obs::NowNs() : 0;
          std::string payload;
          EncodeExecResult(*result, &payload);
          close_conn = !WriteFrame(fd, MsgKind::kResult, payload).ok();
          if (tel != nullptr) {
            tel->net_encode_us()->Record((obs::NowNs() - enc_t0) / 1000);
          }
          break;
        }

        case MsgKind::kOpenCursor: {
          if (cursors.size() >= options_.max_cursors) {
            close_conn =
                !SendError(fd, Status::NoSpace("too many open cursors")).ok();
            break;
          }
          if (in.empty()) {
            close_conn =
                !SendError(fd,
                           Status::InvalidArgument("malformed cursor frame"))
                     .ok();
            break;
          }
          const uint8_t prepared = static_cast<uint8_t>(in[0]);
          in.RemovePrefix(1);
          // Optional trailing field list (count-prefixed varints, same
          // evolution rule as stats): field 0 is the per-cursor isolation
          // override, encoded +1 so 0 means "no override". Absent on the
          // legacy forms — the raw-text form 0 has no room for it (the
          // whole rest of the payload IS the statement text; form 2 is the
          // length-prefixed replacement that does).
          auto decode_trailing =
              [](Slice* rest) -> std::optional<core::Isolation> {
            uint64_t count = 0;
            if (!util::GetVarint64(rest, &count)) return std::nullopt;
            std::optional<core::Isolation> iso;
            for (uint64_t i = 0; i < count; ++i) {
              uint64_t v = 0;
              if (!util::GetVarint64(rest, &v)) break;
              if (i == 0 && v != 0) {
                iso = v == 2 ? core::Isolation::kSnapshot
                             : core::Isolation::kLatestCommitted;
              }
            }
            return iso;
          };
          Result<mql::MoleculeCursor> cursor = [&]() ->
              Result<mql::MoleculeCursor> {
            if (prepared == 1) {
              uint32_t id = 0;
              if (!util::GetFixed32(&in, &id)) {
                return Status::InvalidArgument("malformed cursor frame");
              }
              auto it = statements.find(id);
              if (it == statements.end()) {
                return Status::NotFound("no prepared statement with id " +
                                        std::to_string(id));
              }
              return it->second.Query(decode_trailing(&in));
            }
            if (prepared == 2) {
              Slice mql;
              if (!util::GetLengthPrefixed(&in, &mql)) {
                return Status::InvalidArgument("malformed cursor frame");
              }
              return session->Query(std::string(mql.data(), mql.size()),
                                    decode_trailing(&in));
            }
            return session->Query(std::string(in.data(), in.size()));
          }();
          if (!cursor.ok()) {
            close_conn = !SendError(fd, cursor.status()).ok();
            break;
          }
          cursors_opened_.fetch_add(1, std::memory_order_relaxed);
          const uint32_t id = next_cursor_id++;
          cursors.emplace(id, std::move(*cursor));
          std::string payload;
          util::PutFixed32(&payload, id);
          close_conn = !WriteFrame(fd, MsgKind::kCursorOpened, payload).ok();
          break;
        }

        case MsgKind::kFetch: {
          uint32_t id = 0, max_n = 0;
          if (!util::GetFixed32(&in, &id) || !util::GetFixed32(&in, &max_n)) {
            close_conn =
                !SendError(fd,
                           Status::InvalidArgument("malformed fetch frame"))
                     .ok();
            break;
          }
          auto it = cursors.find(id);
          if (it == cursors.end()) {
            close_conn = !SendError(fd, Status::NotFound(
                                            "no open cursor with id " +
                                            std::to_string(id)))
                              .ok();
            break;
          }
          // Assemble up to max_n molecules, additionally bounded by the
          // byte target so one greedy fetch cannot blow the reply frame.
          std::string body;
          uint64_t count = 0;
          bool done = false;
          Status fetch;
          while (count < max_n && body.size() < kFetchByteTarget) {
            Result<std::optional<mql::Molecule>> next = it->second.Next();
            if (!next.ok()) {
              fetch = next.status();  // e.g. Aborted after a rollback
              break;
            }
            if (!next->has_value()) {
              done = true;
              break;
            }
            EncodeMolecule(**next, &body);
            ++count;
          }
          if (!fetch.ok()) {
            close_conn = !SendError(fd, fetch).ok();
            break;
          }
          molecules_streamed_.fetch_add(count, std::memory_order_relaxed);
          std::string payload;
          payload.push_back(done ? 1 : 0);
          util::PutVarint64(&payload, count);
          payload.append(body);
          close_conn = !WriteFrame(fd, MsgKind::kMolecules, payload).ok();
          break;
        }

        case MsgKind::kCloseCursor: {
          uint32_t id = 0;
          if (!util::GetFixed32(&in, &id)) {
            close_conn =
                !SendError(fd,
                           Status::InvalidArgument("malformed close frame"))
                     .ok();
            break;
          }
          auto it = cursors.find(id);
          if (it == cursors.end()) {
            // Double close: reject cleanly, keep the connection.
            close_conn = !SendError(fd, Status::NotFound(
                                            "no open cursor with id " +
                                            std::to_string(id)))
                              .ok();
            break;
          }
          cursors.erase(it);
          close_conn = !WriteFrame(fd, MsgKind::kOk, {}).ok();
          break;
        }

        case MsgKind::kCloseStatement: {
          uint32_t id = 0;
          if (!util::GetFixed32(&in, &id)) {
            close_conn =
                !SendError(fd,
                           Status::InvalidArgument("malformed close frame"))
                     .ok();
            break;
          }
          if (statements.erase(id) == 0) {
            close_conn = !SendError(fd, Status::NotFound(
                                            "no prepared statement with id " +
                                            std::to_string(id)))
                              .ok();
            break;
          }
          close_conn = !WriteFrame(fd, MsgKind::kOk, {}).ok();
          break;
        }

        case MsgKind::kBeginWork:
        case MsgKind::kCommitWork:
        case MsgKind::kAbortWork: {
          const char* text = req.kind == MsgKind::kBeginWork ? "BEGIN WORK"
                             : req.kind == MsgKind::kCommitWork
                                 ? "COMMIT WORK"
                                 : "ABORT WORK";
          Result<mql::ExecResult> result = session->Execute(text);
          close_conn = !(result.ok() ? WriteFrame(fd, MsgKind::kOk, {})
                                     : SendError(fd, result.status()))
                            .ok();
          break;
        }

        case MsgKind::kSetIsolation: {
          if (in.size() != 1 || static_cast<uint8_t>(in[0]) > 1) {
            close_conn =
                !SendError(fd, Status::InvalidArgument(
                                   "malformed isolation frame"))
                     .ok();
            break;
          }
          session->set_default_isolation(
              static_cast<uint8_t>(in[0]) ==
                      static_cast<uint8_t>(Isolation::kSnapshot)
                  ? core::Isolation::kSnapshot
                  : core::Isolation::kLatestCommitted);
          close_conn = !WriteFrame(fd, MsgKind::kOk, {}).ok();
          break;
        }

        case MsgKind::kStats: {
          std::string payload;
          EncodeServerStats(Stats(), &payload);
          close_conn = !WriteFrame(fd, MsgKind::kStatsReply, payload).ok();
          break;
        }

        case MsgKind::kMetrics: {
          close_conn =
              !WriteFrame(fd, MsgKind::kMetricsReply, db_->MetricsText()).ok();
          break;
        }

        case MsgKind::kGoodbye:
          (void)WriteFrame(fd, MsgKind::kOk, {});
          close_conn = true;
          break;

        default:
          // An unknown request kind means the peer speaks something this
          // server does not; after answering, close — the stream cannot be
          // trusted to stay framed.
          (void)SendError(fd, Status::InvalidArgument(
                                  "unknown request kind " +
                                  std::to_string(static_cast<int>(req.kind))));
          close_conn = true;
          break;
      }
      if (tel != nullptr) {
        tel->net_request_us()->Record((obs::NowNs() - req_t0) / 1000);
      }
      if (close_conn) break;
    }
  }

  ::shutdown(fd, SHUT_RDWR);  // close() happens after join, by the server
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

ServerStats Server::Stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.connections_refused =
      connections_refused_.load(std::memory_order_relaxed);
  s.idle_closes = idle_closes_.load(std::memory_order_relaxed);
  s.statements_executed =
      statements_executed_.load(std::memory_order_relaxed);
  s.statements_prepared =
      statements_prepared_.load(std::memory_order_relaxed);
  s.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  s.molecules_streamed =
      molecules_streamed_.load(std::memory_order_relaxed);
  const mql::StatementCache& cache = db_->data().statement_cache();
  s.stmt_cache_hits = cache.hits();
  s.stmt_cache_misses = cache.misses();
  // The wedged-ring gauge, on the wire: a remote operator watching
  // active_txns > 0 with a far-behind oldest_active_lsn while live_bytes
  // approaches capacity_bytes is looking at a long-running transaction
  // pinning the undo floor.
  const recovery::WalStatsSnapshot wal = db_->wal_stats();
  s.wal_live_bytes = wal.live_bytes;
  s.wal_capacity_bytes = wal.capacity_bytes;
  s.wal_archived_bytes = wal.archived_bytes;
  s.commits_forced = wal.commits_forced;
  s.auto_checkpoints = wal.auto_checkpoints;
  s.active_txns = wal.active_txns;
  s.oldest_active_lsn = wal.oldest_active_lsn;
  if (obs::Telemetry* tel = db_->telemetry()) {
    const obs::HistogramSnapshot stmt = tel->statement_us()->Snapshot();
    s.stmt_latency_p50_us = stmt.p50();
    s.stmt_latency_p95_us = stmt.p95();
    s.stmt_latency_p99_us = stmt.p99();
    s.slow_statements = tel->slow_log().captured();
    s.traced_statements = tel->traced();
    s.net_request_p99_us = tel->net_request_us()->Snapshot().p99();
  }
  const access::VersionStoreStatsSnapshot ver =
      db_->access().versions().StatsSnapshot();
  s.versions_retained = ver.versions_retained;
  s.versions_resolved = ver.versions_resolved;
  s.snapshots_active = ver.snapshots_active;
  s.oldest_snapshot_lsn = ver.oldest_snapshot_lsn;
  const core::TransactionStats& txn = db_->transactions().stats();
  s.lock_conflicts = txn.lock_conflicts.load(std::memory_order_relaxed);
  s.txns_committed = txn.committed.load(std::memory_order_relaxed);
  s.txns_aborted = txn.aborted.load(std::memory_order_relaxed);
  s.txn_retries = txn.txn_retries.load(std::memory_order_relaxed);
  return s;
}

}  // namespace prima::net
