#ifndef PRIMA_WORKLOADS_BREP_H_
#define PRIMA_WORKLOADS_BREP_H_

#include <string>
#include <vector>

#include "core/prima.h"

namespace prima::workloads {

/// The boundary-representation workload of the paper (Fig. 2.1 / 2.3):
/// 3D solids with their BREP decomposed into faces, edges, and points —
/// including the meshed n:m topology (edges shared by faces, points shared
/// by edges) and the recursive solid.sub/super composition.
class BrepWorkload {
 public:
  explicit BrepWorkload(core::Prima* db) : db_(db) {}

  /// Install the schema of Fig. 2.3 verbatim (atom types + the molecule
  /// types edge_obj / face_obj / brep_obj / piece_list).
  util::Status CreateSchema();

  /// Tids of one constructed solid.
  struct Solid {
    access::Tid solid;
    access::Tid brep;
    std::vector<access::Tid> faces;
    std::vector<access::Tid> edges;
    std::vector<access::Tid> points;
  };

  /// Build one tetrahedron: brep + 4 faces + 6 edges + 4 points with the
  /// full shared topology. `solid_no` keys the solid; `brep_no` the brep.
  util::Result<Solid> BuildTetrahedron(int64_t solid_no, int64_t brep_no,
                                       double scale = 1.0);

  /// Build `n` tetrahedra with solid_no = base_no .. base_no+n-1 and
  /// brep_no = solid_no (convenient for queries).
  util::Result<std::vector<Solid>> BuildMany(int64_t base_no, int n);

  /// Compose an assembly: `parent` gets the `children` as sub-solids
  /// (recursive consists-of relationship).
  util::Status Compose(const access::Tid& parent,
                       const std::vector<access::Tid>& children);

  /// A full robot-like assembly tree of the given arity/depth; returns the
  /// root solid tid. Leaves are tetrahedra; solid_no values start at
  /// base_no (the root takes base_no itself).
  util::Result<access::Tid> BuildAssembly(int64_t base_no, int arity,
                                          int depth);

 private:
  core::Prima* db_;
  int64_t next_auto_no_ = 1000000;
};

}  // namespace prima::workloads

#endif  // PRIMA_WORKLOADS_BREP_H_
