#include "workloads/brep.h"

namespace prima::workloads {

using access::AttrValue;
using access::Tid;
using access::Value;
using util::Result;
using util::Status;

namespace {
/// Fig. 2.3 of the paper, verbatim (modulo OCR fixes; HULL_DIM is
/// interpreted as a fixed REAL array, see DESIGN.md).
const char* kSchema[] = {
    "CREATE ATOM_TYPE solid"
    " ( solid_id : IDENTIFIER,"
    "   solid_no : INTEGER,"
    "   description : CHAR_VAR,"
    "   sub : SET_OF (REF_TO (solid.super)),"
    "   super : SET_OF (REF_TO (solid.sub)),"
    "   brep : REF_TO (brep.solid) )"
    " KEYS_ARE (solid_no)",

    "CREATE ATOM_TYPE brep"
    " ( brep_id : IDENTIFIER,"
    "   brep_no : INTEGER,"
    "   hull : HULL_DIM(3),"
    "   solid : REF_TO (solid.brep),"
    "   faces : SET_OF (REF_TO (face.brep)) (4,VAR),"
    "   edges : SET_OF (REF_TO (edge.brep)) (6,VAR),"
    "   points : SET_OF (REF_TO (point.brep)) (4,VAR) )"
    " KEYS_ARE (brep_no)",

    "CREATE ATOM_TYPE face"
    " ( face_id : IDENTIFIER,"
    "   square_dim : REAL,"
    "   border : SET_OF (REF_TO (edge.face)) (3,VAR),"
    "   crosspoint : SET_OF (REF_TO (point.face)) (3,VAR),"
    "   brep : REF_TO (brep.faces) )",

    "CREATE ATOM_TYPE edge"
    " ( edge_id : IDENTIFIER,"
    "   length : REAL,"
    "   boundary : SET_OF (REF_TO (point.line)) (2,VAR),"
    "   face : SET_OF (REF_TO (face.border)) (2,VAR),"
    "   brep : REF_TO (brep.edges) )",

    "CREATE ATOM_TYPE point"
    " ( point_id : IDENTIFIER,"
    "   placement : RECORD"
    "     x_coord, y_coord, z_coord : REAL,"
    "   END,"
    "   line : SET_OF (REF_TO (edge.boundary)) (1,VAR),"
    "   face : SET_OF (REF_TO (face.crosspoint)) (1,VAR),"
    "   brep : REF_TO (brep.points) )",

    // Molecule types of Fig. 2.3c.
    "DEFINE MOLECULE TYPE edge_obj FROM edge - point",
    "DEFINE MOLECULE TYPE face_obj FROM face - edge_obj",
    "DEFINE MOLECULE TYPE brep_obj FROM brep - face_obj",
    "DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (RECURSIVE)",
};

Value RefSet(const std::vector<Tid>& tids) {
  std::vector<Value> elems;
  elems.reserve(tids.size());
  for (const Tid& t : tids) elems.push_back(Value::Ref(t));
  return Value::List(std::move(elems));
}

Value Point3(double x, double y, double z) {
  return Value::Record({Value::Real(x), Value::Real(y), Value::Real(z)});
}
}  // namespace

Status BrepWorkload::CreateSchema() {
  for (const char* stmt : kSchema) {
    auto r = db_->Execute(stmt);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

Result<BrepWorkload::Solid> BrepWorkload::BuildTetrahedron(int64_t solid_no,
                                                           int64_t brep_no,
                                                           double scale) {
  access::AccessSystem& access = db_->access();
  const access::Catalog& catalog = access.catalog();
  const auto* solid_def = catalog.FindAtomType("solid");
  const auto* brep_def = catalog.FindAtomType("brep");
  const auto* face_def = catalog.FindAtomType("face");
  const auto* edge_def = catalog.FindAtomType("edge");
  const auto* point_def = catalog.FindAtomType("point");
  if (solid_def == nullptr || brep_def == nullptr || face_def == nullptr ||
      edge_def == nullptr || point_def == nullptr) {
    return Status::InvalidArgument("BREP schema not installed");
  }

  Solid out;

  // Solid first (brep references it).
  PRIMA_ASSIGN_OR_RETURN(
      out.solid,
      access.InsertAtom(
          solid_def->id,
          {AttrValue{solid_def->FindAttr("solid_no")->id, Value::Int(solid_no)},
           AttrValue{solid_def->FindAttr("description")->id,
                     Value::String("tetra_" + std::to_string(solid_no))}}));

  // 4 vertices of a tetrahedron.
  const double s = scale;
  const double coords[4][3] = {
      {0, 0, 0}, {s, 0, 0}, {0, s, 0}, {0, 0, s}};
  const uint16_t placement = point_def->FindAttr("placement")->id;
  for (const auto& c : coords) {
    PRIMA_ASSIGN_OR_RETURN(
        const Tid p,
        access.InsertAtom(point_def->id,
                          {AttrValue{placement, Point3(c[0], c[1], c[2])}}));
    out.points.push_back(p);
  }

  // 6 edges: all vertex pairs.
  const int pairs[6][2] = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  const uint16_t boundary = edge_def->FindAttr("boundary")->id;
  const uint16_t length = edge_def->FindAttr("length")->id;
  for (int e = 0; e < 6; ++e) {
    const auto& a = coords[pairs[e][0]];
    const auto& b = coords[pairs[e][1]];
    double len2 = 0;
    for (int i = 0; i < 3; ++i) len2 += (a[i] - b[i]) * (a[i] - b[i]);
    PRIMA_ASSIGN_OR_RETURN(
        const Tid t,
        access.InsertAtom(
            edge_def->id,
            {AttrValue{length, Value::Real(len2)},
             AttrValue{boundary, RefSet({out.points[pairs[e][0]],
                                         out.points[pairs[e][1]]})}}));
    out.edges.push_back(t);
  }

  // 4 faces: vertex triples (= edge triples).
  const int face_edges[4][3] = {{0, 1, 3}, {0, 2, 4}, {1, 2, 5}, {3, 4, 5}};
  const int face_points[4][3] = {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}};
  const uint16_t border = face_def->FindAttr("border")->id;
  const uint16_t crosspoint = face_def->FindAttr("crosspoint")->id;
  const uint16_t square_dim = face_def->FindAttr("square_dim")->id;
  for (int f = 0; f < 4; ++f) {
    PRIMA_ASSIGN_OR_RETURN(
        const Tid t,
        access.InsertAtom(
            face_def->id,
            {AttrValue{square_dim, Value::Real(0.5 * s * s * (f + 1))},
             AttrValue{border, RefSet({out.edges[face_edges[f][0]],
                                       out.edges[face_edges[f][1]],
                                       out.edges[face_edges[f][2]]})},
             AttrValue{crosspoint, RefSet({out.points[face_points[f][0]],
                                           out.points[face_points[f][1]],
                                           out.points[face_points[f][2]]})}}));
    out.faces.push_back(t);
  }

  // Brep last: its reference sets install every back-reference.
  std::vector<Value> hull;
  for (int i = 0; i < 3; ++i) hull.push_back(Value::Real(0.0));
  for (int i = 0; i < 3; ++i) hull.push_back(Value::Real(s));
  PRIMA_ASSIGN_OR_RETURN(
      out.brep,
      access.InsertAtom(
          brep_def->id,
          {AttrValue{brep_def->FindAttr("brep_no")->id, Value::Int(brep_no)},
           AttrValue{brep_def->FindAttr("hull")->id, Value::List(hull)},
           AttrValue{brep_def->FindAttr("solid")->id, Value::Ref(out.solid)},
           AttrValue{brep_def->FindAttr("faces")->id, RefSet(out.faces)},
           AttrValue{brep_def->FindAttr("edges")->id, RefSet(out.edges)},
           AttrValue{brep_def->FindAttr("points")->id, RefSet(out.points)}}));
  return out;
}

Result<std::vector<BrepWorkload::Solid>> BrepWorkload::BuildMany(
    int64_t base_no, int n) {
  std::vector<Solid> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    PRIMA_ASSIGN_OR_RETURN(Solid s,
                           BuildTetrahedron(base_no + i, base_no + i,
                                            1.0 + 0.25 * (i % 8)));
    out.push_back(std::move(s));
  }
  return out;
}

Status BrepWorkload::Compose(const Tid& parent,
                             const std::vector<Tid>& children) {
  const auto* solid_def = db_->access().catalog().FindAtomType("solid");
  const uint16_t sub = solid_def->FindAttr("sub")->id;
  for (const Tid& child : children) {
    PRIMA_RETURN_IF_ERROR(db_->access().Connect(parent, sub, child));
  }
  return Status::Ok();
}

Result<Tid> BrepWorkload::BuildAssembly(int64_t base_no, int arity,
                                        int depth) {
  PRIMA_ASSIGN_OR_RETURN(Solid root, BuildTetrahedron(base_no, next_auto_no_++,
                                                      1.0));
  if (depth <= 0) return root.solid;
  std::vector<Tid> children;
  int64_t next = base_no * 10 + 1;
  for (int i = 0; i < arity; ++i) {
    PRIMA_ASSIGN_OR_RETURN(const Tid child,
                           BuildAssembly(next + i, arity, depth - 1));
    children.push_back(child);
  }
  PRIMA_RETURN_IF_ERROR(Compose(root.solid, children));
  return root.solid;
}

}  // namespace prima::workloads
