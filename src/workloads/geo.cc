#include "workloads/geo.h"

namespace prima::workloads {

using access::AttrValue;
using access::Tid;
using access::Value;
using util::Result;
using util::Status;

namespace {
const char* kSchema[] = {
    "CREATE ATOM_TYPE map"
    " ( map_id : IDENTIFIER,"
    "   map_no : INTEGER,"
    "   name : CHAR_VAR,"
    "   regions : SET_OF (REF_TO (region.map)) )"
    " KEYS_ARE (map_no)",

    "CREATE ATOM_TYPE region"
    " ( region_id : IDENTIFIER,"
    "   region_no : INTEGER,"
    "   population : INTEGER,"
    "   area : REAL,"
    "   map : REF_TO (map.regions),"
    "   borders : SET_OF (REF_TO (border.regions)) )",

    "CREATE ATOM_TYPE border"
    " ( border_id : IDENTIFIER,"
    "   border_no : INTEGER,"
    "   length : REAL,"
    "   regions : SET_OF (REF_TO (region.borders)) (1,2) )",
};
}  // namespace

Status GeoWorkload::CreateSchema() {
  for (const char* stmt : kSchema) {
    auto r = db_->Execute(stmt);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

Result<GeoWorkload::MapData> GeoWorkload::GenerateGrid(int64_t map_no,
                                                       int rows, int cols,
                                                       uint64_t seed) {
  access::AccessSystem& access = db_->access();
  const access::Catalog& catalog = access.catalog();
  const auto* map_def = catalog.FindAtomType("map");
  const auto* region_def = catalog.FindAtomType("region");
  const auto* border_def = catalog.FindAtomType("border");
  if (map_def == nullptr || region_def == nullptr || border_def == nullptr) {
    return Status::InvalidArgument("GEO schema not installed");
  }
  util::Random rng(seed);
  MapData out;

  PRIMA_ASSIGN_OR_RETURN(
      out.map,
      access.InsertAtom(
          map_def->id,
          {AttrValue{map_def->FindAttr("map_no")->id, Value::Int(map_no)},
           AttrValue{map_def->FindAttr("name")->id,
                     Value::String("map" + std::to_string(map_no))}}));

  const uint16_t region_no = region_def->FindAttr("region_no")->id;
  const uint16_t population = region_def->FindAttr("population")->id;
  const uint16_t area = region_def->FindAttr("area")->id;
  const uint16_t region_map = region_def->FindAttr("map")->id;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      PRIMA_ASSIGN_OR_RETURN(
          const Tid t,
          access.InsertAtom(
              region_def->id,
              {AttrValue{region_no, Value::Int(map_no * 100000 + r * cols + c)},
               AttrValue{population, Value::Int(rng.Range(100, 1000000))},
               AttrValue{area, Value::Real(1.0 + rng.NextDouble() * 99.0)},
               AttrValue{region_map, Value::Ref(out.map)}}));
      out.regions.push_back(t);
    }
  }

  // Interior borders: shared by horizontally / vertically adjacent regions
  // (the paper's non-disjoint molecules: two solids "glued" at a face).
  const uint16_t border_no = border_def->FindAttr("border_no")->id;
  const uint16_t length = border_def->FindAttr("length")->id;
  const uint16_t border_regions = border_def->FindAttr("regions")->id;
  int64_t next_border = map_no * 1000000;
  auto region_at = [&](int r, int c) { return out.regions[r * cols + c]; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Right neighbor.
      if (c + 1 < cols) {
        PRIMA_ASSIGN_OR_RETURN(
            const Tid b,
            access.InsertAtom(
                border_def->id,
                {AttrValue{border_no, Value::Int(next_border++)},
                 AttrValue{length, Value::Real(1.0 + rng.NextDouble() * 9.0)},
                 AttrValue{border_regions,
                           Value::List({Value::Ref(region_at(r, c)),
                                        Value::Ref(region_at(r, c + 1))})}}));
        out.borders.push_back(b);
      }
      // Bottom neighbor.
      if (r + 1 < rows) {
        PRIMA_ASSIGN_OR_RETURN(
            const Tid b,
            access.InsertAtom(
                border_def->id,
                {AttrValue{border_no, Value::Int(next_border++)},
                 AttrValue{length, Value::Real(1.0 + rng.NextDouble() * 9.0)},
                 AttrValue{border_regions,
                           Value::List({Value::Ref(region_at(r, c)),
                                        Value::Ref(region_at(r + 1, c))})}}));
        out.borders.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace prima::workloads
