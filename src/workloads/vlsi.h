#ifndef PRIMA_WORKLOADS_VLSI_H_
#define PRIMA_WORKLOADS_VLSI_H_

#include <vector>

#include "core/prima.h"
#include "util/random.h"

namespace prima::workloads {

/// VLSI circuit design workload (one of the three application areas the
/// paper evaluated with prototype systems, §1): cells placed on a die,
/// pins per cell, and nets wiring pins across cells — a heavily meshed n:m
/// structure, plus 2-D placement suited to the grid-file access path.
class VlsiWorkload {
 public:
  explicit VlsiWorkload(core::Prima* db) : db_(db) {}

  util::Status CreateSchema();

  struct Circuit {
    std::vector<access::Tid> cells;
    std::vector<access::Tid> pins;
    std::vector<access::Tid> nets;
  };

  /// Deterministically generate `n_cells` cells on a die_size x die_size
  /// grid, `pins_per_cell` pins each, and `n_nets` nets connecting 2..5
  /// random pins.
  util::Result<Circuit> Generate(int n_cells, int pins_per_cell, int n_nets,
                                 int64_t die_size, uint64_t seed);

 private:
  core::Prima* db_;
};

}  // namespace prima::workloads

#endif  // PRIMA_WORKLOADS_VLSI_H_
