#include "workloads/mmo.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_map>

#include "net/client.h"
#include "obs/trace.h"

namespace prima::workloads {

using access::AttrValue;
using access::Tid;
using access::Value;
using util::Result;
using util::Status;

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kLogin:        return "login";
    case OpKind::kItemGrant:    return "item_grant";
    case OpKind::kGoldTransfer: return "gold_transfer";
    case OpKind::kGuildJoin:    return "guild_join";
    case OpKind::kGuildLeave:   return "guild_leave";
    case OpKind::kRosterScan:   return "roster_scan";
    case OpKind::kQuestTick:    return "quest_tick";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Schema + population
// ---------------------------------------------------------------------------

namespace {
// The MmoAttrs constants in the header are the wire driver's only catalog;
// the installer verifies them against the real one below.
const char* kSchema[] = {
    "CREATE ATOM_TYPE account"
    " ( account_id : IDENTIFIER,"
    "   account_no : INTEGER,"
    "   last_op : INTEGER,"
    "   player : REF_TO (player.account) )"
    " KEYS_ARE (account_no)",

    "CREATE ATOM_TYPE player"
    " ( player_id : IDENTIFIER,"
    "   player_no : INTEGER,"
    "   name : CHAR_VAR,"
    "   gold : INTEGER,"
    "   touch : INTEGER,"
    "   account : REF_TO (account.player),"
    "   guild : REF_TO (guild.members),"
    "   items : SET_OF (REF_TO (item.owner)),"
    "   quests : SET_OF (REF_TO (quest.player)) )"
    " KEYS_ARE (player_no)",

    "CREATE ATOM_TYPE guild"
    " ( guild_id : IDENTIFIER,"
    "   guild_no : INTEGER,"
    "   name : CHAR_VAR,"
    "   members : SET_OF (REF_TO (player.guild)) )"
    " KEYS_ARE (guild_no)",

    "CREATE ATOM_TYPE item"
    " ( item_id : IDENTIFIER,"
    "   item_no : INTEGER,"
    "   kind : INTEGER,"
    "   count : INTEGER,"
    "   touch : INTEGER,"
    "   owner : REF_TO (player.items) )"
    " KEYS_ARE (item_no)",

    "CREATE ATOM_TYPE quest"
    " ( quest_id : IDENTIFIER,"
    "   quest_no : INTEGER,"
    "   ticks : INTEGER,"
    "   touch : INTEGER,"
    "   player : REF_TO (player.quests) )"
    " KEYS_ARE (quest_no)",
};

Status CheckAttr(const access::AtomTypeDef* def, const char* name,
                 size_t expected) {
  const auto* attr = def->FindAttr(name);
  if (attr == nullptr || attr->id != expected) {
    return Status::InvalidArgument(std::string("MMO schema drifted: ") + name);
  }
  return Status::Ok();
}
}  // namespace

Status MmoWorkload::CreateSchema() {
  for (const char* stmt : kSchema) {
    auto r = db_->Execute(stmt);
    if (!r.ok()) return r.status();
  }
  const access::Catalog& catalog = db_->access().catalog();
  const auto* account = catalog.FindAtomType("account");
  const auto* player = catalog.FindAtomType("player");
  const auto* guild = catalog.FindAtomType("guild");
  const auto* item = catalog.FindAtomType("item");
  const auto* quest = catalog.FindAtomType("quest");
  PRIMA_RETURN_IF_ERROR(CheckAttr(account, "account_no", MmoAttrs::kAccountNo));
  PRIMA_RETURN_IF_ERROR(CheckAttr(account, "last_op", MmoAttrs::kAccountLastOp));
  PRIMA_RETURN_IF_ERROR(CheckAttr(player, "player_no", MmoAttrs::kPlayerNo));
  PRIMA_RETURN_IF_ERROR(CheckAttr(player, "gold", MmoAttrs::kPlayerGold));
  PRIMA_RETURN_IF_ERROR(CheckAttr(player, "touch", MmoAttrs::kPlayerTouch));
  PRIMA_RETURN_IF_ERROR(CheckAttr(player, "guild", MmoAttrs::kPlayerGuild));
  PRIMA_RETURN_IF_ERROR(CheckAttr(guild, "guild_no", MmoAttrs::kGuildNo));
  PRIMA_RETURN_IF_ERROR(CheckAttr(guild, "members", MmoAttrs::kGuildMembers));
  PRIMA_RETURN_IF_ERROR(CheckAttr(item, "item_no", MmoAttrs::kItemNo));
  PRIMA_RETURN_IF_ERROR(CheckAttr(item, "count", MmoAttrs::kItemCount));
  PRIMA_RETURN_IF_ERROR(CheckAttr(item, "touch", MmoAttrs::kItemTouch));
  PRIMA_RETURN_IF_ERROR(CheckAttr(quest, "quest_no", MmoAttrs::kQuestNo));
  PRIMA_RETURN_IF_ERROR(CheckAttr(quest, "ticks", MmoAttrs::kQuestTicks));
  PRIMA_RETURN_IF_ERROR(CheckAttr(quest, "touch", MmoAttrs::kQuestTouch));
  return Status::Ok();
}

Status MmoWorkload::Populate(const MmoConfig& cfg) {
  if (cfg.players < cfg.sessions || cfg.sessions < 1 || cfg.guilds < 1) {
    return Status::InvalidArgument("MMO config: need players >= sessions >= 1"
                                   " and at least one guild");
  }
  access::AccessSystem& access = db_->access();
  const access::Catalog& catalog = access.catalog();
  const auto* account = catalog.FindAtomType("account");
  const auto* player = catalog.FindAtomType("player");
  const auto* guild = catalog.FindAtomType("guild");
  const auto* item = catalog.FindAtomType("item");
  const auto* quest = catalog.FindAtomType("quest");
  if (player == nullptr) return Status::InvalidArgument("MMO schema missing");

  for (int s = 0; s < cfg.sessions; ++s) {
    PRIMA_ASSIGN_OR_RETURN(
        Tid t, access.InsertAtom(
                   account->id,
                   {AttrValue{MmoAttrs::kAccountNo, Value::Int(s)},
                    AttrValue{MmoAttrs::kAccountLastOp, Value::Int(0)}}));
    (void)t;
  }
  std::vector<Tid> player_tids(cfg.players);
  for (int p = 0; p < cfg.players; ++p) {
    PRIMA_ASSIGN_OR_RETURN(
        player_tids[p],
        access.InsertAtom(
            player->id,
            {AttrValue{MmoAttrs::kPlayerNo, Value::Int(p)},
             AttrValue{2, Value::String("p" + std::to_string(p))},
             AttrValue{MmoAttrs::kPlayerGold, Value::Int(cfg.initial_gold)},
             AttrValue{MmoAttrs::kPlayerTouch, Value::Int(0)}}));
  }
  for (int g = 0; g < cfg.guilds; ++g) {
    PRIMA_ASSIGN_OR_RETURN(
        Tid t, access.InsertAtom(
                   guild->id,
                   {AttrValue{MmoAttrs::kGuildNo, Value::Int(g)},
                    AttrValue{2, Value::String("g" + std::to_string(g))}}));
    (void)t;
  }
  for (int p = 0; p < cfg.players; ++p) {
    for (int k = 0; k < cfg.items_per_player; ++k) {
      PRIMA_ASSIGN_OR_RETURN(
          Tid t,
          access.InsertAtom(
              item->id,
              {AttrValue{MmoAttrs::kItemNo,
                         Value::Int(p * cfg.items_per_player + k)},
               AttrValue{2, Value::Int(k)},
               AttrValue{MmoAttrs::kItemCount, Value::Int(0)},
               AttrValue{MmoAttrs::kItemTouch, Value::Int(0)},
               AttrValue{5, Value::Ref(player_tids[p])}}));
      (void)t;
    }
    for (int k = 0; k < cfg.quests_per_player; ++k) {
      PRIMA_ASSIGN_OR_RETURN(
          Tid t,
          access.InsertAtom(
              quest->id,
              {AttrValue{MmoAttrs::kQuestNo,
                         Value::Int(p * cfg.quests_per_player + k)},
               AttrValue{MmoAttrs::kQuestTicks, Value::Int(0)},
               AttrValue{MmoAttrs::kQuestTouch, Value::Int(0)},
               AttrValue{4, Value::Ref(player_tids[p])}}));
      (void)t;
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Deterministic op generation
// ---------------------------------------------------------------------------

namespace {
/// Per-(session, seq) RNG stream: the op is reproducible in isolation, which
/// is what lets a fresh process rebuild the oracle after kill -9.
uint64_t OpSeed(uint64_t seed, int session, uint64_t seq) {
  uint64_t s = seed * 0x9E3779B97F4A7C15ull;
  s ^= (static_cast<uint64_t>(session) + 1) * 0xBF58476D1CE4E5B9ull;
  s = (s ^ (s >> 27)) * 0x94D049BB133111EBull;
  s ^= seq * 0xD6E8FEB86659FD93ull;
  return s | 1;  // xorshift streams must not start at 0
}
}  // namespace

Op PlanOp(const MmoConfig& cfg, int session, uint64_t seq,
          const std::vector<int>& guild_of) {
  util::Random rng(OpSeed(cfg.seed, session, seq));
  Op op;
  op.session = session;
  op.seq = seq;

  const auto& m = cfg.mix;
  const int total = m.login + m.item_grant + m.gold_transfer + m.guild_join +
                    m.guild_leave + m.roster_scan + m.quest_tick;
  int pick = static_cast<int>(rng.Uniform(static_cast<uint64_t>(
      total > 0 ? total : 1)));
  auto take = [&pick](int w) {
    pick -= w;
    return pick < 0;
  };
  if (take(m.login))              op.kind = OpKind::kLogin;
  else if (take(m.item_grant))    op.kind = OpKind::kItemGrant;
  else if (take(m.gold_transfer)) op.kind = OpKind::kGoldTransfer;
  else if (take(m.guild_join))    op.kind = OpKind::kGuildJoin;
  else if (take(m.guild_leave))   op.kind = OpKind::kGuildLeave;
  else if (take(m.roster_scan))   op.kind = OpKind::kRosterScan;
  else                            op.kind = OpKind::kQuestTick;

  op.voluntary_abort =
      cfg.abort_fraction > 0.0 && rng.NextDouble() < cfg.abort_fraction;

  const int players = cfg.players;
  auto owned_player = [&] {
    // Players are sliced by player_no % sessions; only the owner session
    // ever changes a player's guild, so membership never needs cross-thread
    // agreement.
    const int owned =
        (players - session + cfg.sessions - 1) / cfg.sessions;
    return session +
           cfg.sessions * static_cast<int>(rng.Uniform(
                              static_cast<uint64_t>(owned)));
  };
  switch (op.kind) {
    case OpKind::kLogin:
      op.player_a = static_cast<int>(rng.Skewed(players));
      break;
    case OpKind::kItemGrant:
      op.item = static_cast<int>(
          rng.Skewed(static_cast<uint64_t>(players) * cfg.items_per_player));
      op.amount = 1 + static_cast<int64_t>(rng.Uniform(5));
      break;
    case OpKind::kGoldTransfer:
      op.player_a = static_cast<int>(rng.Skewed(players));
      op.player_b = static_cast<int>(rng.Skewed(players));
      if (op.player_b == op.player_a) op.player_b = (op.player_a + 1) % players;
      op.amount = 1 + static_cast<int64_t>(rng.Uniform(10));
      break;
    case OpKind::kGuildJoin:
      op.player_a = owned_player();
      op.guild = static_cast<int>(rng.Uniform(cfg.guilds));
      break;
    case OpKind::kGuildLeave:
      op.player_a = owned_player();
      op.guild = static_cast<int>(rng.Uniform(cfg.guilds));  // join fallback
      if (guild_of[op.player_a] < 0) {
        op.kind = OpKind::kGuildJoin;  // nothing to leave: join instead
      } else {
        op.guild = guild_of[op.player_a];
      }
      break;
    case OpKind::kRosterScan:
      op.guild = static_cast<int>(rng.Skewed(cfg.guilds));
      break;
    case OpKind::kQuestTick:
      op.quest = static_cast<int>(
          rng.Skewed(static_cast<uint64_t>(players) * cfg.quests_per_player));
      break;
  }
  if (!op.IsWrite()) op.voluntary_abort = false;
  return op;
}

// ---------------------------------------------------------------------------
// Shadow
// ---------------------------------------------------------------------------

MmoShadow::MmoShadow(const MmoConfig& cfg)
    : gold_(cfg.players, cfg.initial_gold),
      guild_of_(cfg.players, -1),
      items_(static_cast<size_t>(cfg.players) * cfg.items_per_player, 0),
      quests_(static_cast<size_t>(cfg.players) * cfg.quests_per_player, 0) {}

void MmoShadow::Apply(const Op& op) {
  switch (op.kind) {
    case OpKind::kGoldTransfer:
      gold_[op.player_a] -= op.amount;
      gold_[op.player_b] += op.amount;
      break;
    case OpKind::kItemGrant:
      items_[op.item] += op.amount;
      break;
    case OpKind::kQuestTick:
      quests_[op.quest] += 1;
      break;
    case OpKind::kGuildJoin:
      guild_of_[op.player_a] = op.guild;
      break;
    case OpKind::kGuildLeave:
      guild_of_[op.player_a] = -1;
      break;
    case OpKind::kLogin:
    case OpKind::kRosterScan:
      break;
  }
}

int64_t MmoShadow::total_gold() const {
  int64_t sum = 0;
  for (int64_t g : gold_) sum += g;
  return sum;
}

// ---------------------------------------------------------------------------
// Transport-neutral session
// ---------------------------------------------------------------------------

namespace {

/// The driver speaks to both transports through one surface: plain Execute,
/// slot-addressed prepared statements, and a streaming scan with a per-open
/// isolation override.
class MmoSession {
 public:
  virtual ~MmoSession() = default;
  virtual Result<mql::ExecResult> Execute(const std::string& mql) = 0;
  virtual Status Prepare(size_t slot, const std::string& mql) = 0;
  virtual Status Bind(size_t slot, size_t index, const Value& v) = 0;
  virtual Result<mql::ExecResult> ExecutePrepared(size_t slot) = 0;
  /// Drain the prepared SELECT in `slot` as a streaming cursor; returns the
  /// number of molecules streamed.
  virtual Result<uint64_t> ScanPrepared(size_t slot,
                                        core::Isolation isolation) = 0;
};

class InProcSession final : public MmoSession {
 public:
  explicit InProcSession(core::Prima* db) : session_(db->OpenSession()) {}

  Result<mql::ExecResult> Execute(const std::string& mql) override {
    return session_->Execute(mql);
  }
  Status Prepare(size_t slot, const std::string& mql) override {
    if (slots_.size() <= slot) slots_.resize(slot + 1);
    PRIMA_ASSIGN_OR_RETURN(auto stmt, session_->Prepare(mql));
    slots_[slot].emplace(std::move(stmt));
    return Status::Ok();
  }
  Status Bind(size_t slot, size_t index, const Value& v) override {
    return slots_[slot]->Bind(index, v);
  }
  Result<mql::ExecResult> ExecutePrepared(size_t slot) override {
    return slots_[slot]->Execute();
  }
  Result<uint64_t> ScanPrepared(size_t slot,
                                core::Isolation isolation) override {
    PRIMA_ASSIGN_OR_RETURN(auto cursor, slots_[slot]->Query(isolation));
    uint64_t n = 0;
    while (true) {
      PRIMA_ASSIGN_OR_RETURN(auto molecule, cursor.Next());
      if (!molecule.has_value()) break;
      ++n;
    }
    return n;
  }

 private:
  std::unique_ptr<core::Session> session_;
  std::vector<std::optional<core::PreparedStatement>> slots_;
};

class WireSession final : public MmoSession {
 public:
  static Result<std::unique_ptr<WireSession>> Connect(const std::string& host,
                                                      uint16_t port) {
    PRIMA_ASSIGN_OR_RETURN(auto client, net::Client::Connect(host, port));
    auto s = std::unique_ptr<WireSession>(new WireSession);
    s->client_ = std::move(client);
    return s;
  }

  Result<mql::ExecResult> Execute(const std::string& mql) override {
    return client_->Execute(mql);
  }
  Status Prepare(size_t slot, const std::string& mql) override {
    if (slots_.size() <= slot) slots_.resize(slot + 1);
    PRIMA_ASSIGN_OR_RETURN(auto stmt, client_->Prepare(mql));
    slots_[slot].emplace(std::move(stmt));
    return Status::Ok();
  }
  Status Bind(size_t slot, size_t index, const Value& v) override {
    return slots_[slot]->Bind(static_cast<uint32_t>(index), v);
  }
  Result<mql::ExecResult> ExecutePrepared(size_t slot) override {
    return slots_[slot]->Execute();
  }
  Result<uint64_t> ScanPrepared(size_t slot,
                                core::Isolation isolation) override {
    const net::Isolation wire_iso = isolation == core::Isolation::kSnapshot
                                        ? net::Isolation::kSnapshot
                                        : net::Isolation::kLatestCommitted;
    PRIMA_ASSIGN_OR_RETURN(auto cursor, slots_[slot]->Query(64, wire_iso));
    uint64_t n = 0;
    while (true) {
      PRIMA_ASSIGN_OR_RETURN(auto molecule, cursor.Next());
      if (!molecule.has_value()) break;
      ++n;
    }
    PRIMA_RETURN_IF_ERROR(cursor.Close());
    return n;
  }

 private:
  WireSession() = default;
  std::unique_ptr<net::Client> client_;
  std::vector<std::optional<net::RemoteStatement>> slots_;
};

Status ToStatus(const Result<mql::ExecResult>& r) {
  return r.ok() ? Status::Ok() : r.status();
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

namespace {
enum Slot : size_t {
  kSelPlayer = 0,  // SELECT ALL FROM player WHERE player_no = ?
  kTouchPlayer,    // MODIFY player SET touch = ? WHERE player_no = ?
  kSetGold,        // MODIFY player SET gold = ? WHERE player_no = ?
  kSetGuild,       // MODIFY player SET guild = ? WHERE player_no = ?
  kSelItem,
  kTouchItem,
  kSetItemCount,
  kSelQuest,
  kTouchQuest,
  kSetTicks,
  kMarker,         // MODIFY account SET last_op = ? WHERE account_no = ?
  kRoster,         // SELECT ALL FROM guild-player-item WHERE guild_no = ?
  kSlotCount
};

const char* kSlotMql[kSlotCount] = {
    "SELECT ALL FROM player WHERE player_no = ?",
    "MODIFY player SET touch = ? WHERE player_no = ?",
    "MODIFY player SET gold = ? WHERE player_no = ?",
    "MODIFY player SET guild = ? WHERE player_no = ?",
    "SELECT ALL FROM item WHERE item_no = ?",
    "MODIFY item SET touch = ? WHERE item_no = ?",
    "MODIFY item SET count = ? WHERE item_no = ?",
    "SELECT ALL FROM quest WHERE quest_no = ?",
    "MODIFY quest SET touch = ? WHERE quest_no = ?",
    "MODIFY quest SET ticks = ? WHERE quest_no = ?",
    "MODIFY account SET last_op = ? WHERE account_no = ?",
    "SELECT ALL FROM guild-player-item WHERE guild_no = ?",
};
}  // namespace

class MmoDriver::SessionRunner {
 public:
  SessionRunner(MmoDriver* driver, int sid, obs::Histogram* hist,
                std::atomic<uint64_t>* retries,
                std::atomic<uint64_t>* scanned,
                std::atomic<uint64_t>* voluntary)
      : driver_(driver),
        cfg_(driver->cfg_),
        sid_(sid),
        hist_(hist),
        retries_(retries),
        scanned_(scanned),
        voluntary_(voluntary),
        guild_of_(cfg_.players, -1) {}

  Status Run() {
    PRIMA_RETURN_IF_ERROR(Open());
    PRIMA_RETURN_IF_ERROR(Warmup());
    for (size_t i = 0; i < kSlotCount; ++i) {
      PRIMA_RETURN_IF_ERROR(sess_->Prepare(i, kSlotMql[i]));
    }
    util::RetryPolicy policy;
    policy.max_attempts = cfg_.max_attempts;
    policy.jitter_seed = OpSeed(cfg_.seed, sid_, 0) ^ 0x6A6974746572ull;
    policy.retry_counter = retries_;
    acked_.reserve(cfg_.ops_per_session);
    for (uint64_t seq = 1; seq <= cfg_.ops_per_session; ++seq) {
      const Op op = PlanOp(cfg_, sid_, seq, guild_of_);
      const uint64_t t0 = obs::NowNs();
      Status st =
          util::RetryTransient(policy, [&] { return ExecOp(op); });
      if (!st.ok()) {
        return Status::IoError("mmo session " + std::to_string(sid_) +
                               " op " + std::to_string(seq) + " (" +
                               OpKindName(op.kind) + "): " + st.ToString());
      }
      hist_[static_cast<int>(op.kind)].Record((obs::NowNs() - t0) / 1000);
      if (op.voluntary_abort) {
        voluntary_->fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (driver_->ack_hook_) driver_->ack_hook_(op);
      acked_.push_back(op);
      if (op.kind == OpKind::kGuildJoin) guild_of_[op.player_a] = op.guild;
      if (op.kind == OpKind::kGuildLeave) guild_of_[op.player_a] = -1;
    }
    return Status::Ok();
  }

  std::vector<Op> acked_;

 private:
  Status Open() {
    if (driver_->db_ != nullptr) {
      sess_ = std::make_unique<InProcSession>(driver_->db_);
      return Status::Ok();
    }
    PRIMA_ASSIGN_OR_RETURN(auto wire,
                           WireSession::Connect(cfg_.host, cfg_.port));
    sess_ = std::move(wire);
    return Status::Ok();
  }

  /// Load the tid maps the guild statements need (MODIFY ... SET guild binds
  /// a REF value; DISCONNECT addresses both atoms by tid literal).
  Status Warmup() {
    player_tids_.assign(cfg_.players, Tid{});
    guild_tids_.assign(cfg_.guilds, Tid{});
    PRIMA_ASSIGN_OR_RETURN(auto players,
                           sess_->Execute("SELECT ALL FROM player"));
    for (const auto& m : players.molecules.molecules) {
      const access::Atom& a = m.groups[0].atoms[0];
      player_tids_[a.attrs[MmoAttrs::kPlayerNo].AsInt()] = a.tid;
    }
    PRIMA_ASSIGN_OR_RETURN(auto guilds,
                           sess_->Execute("SELECT ALL FROM guild"));
    for (const auto& m : guilds.molecules.molecules) {
      const access::Atom& a = m.groups[0].atoms[0];
      guild_tids_[a.attrs[MmoAttrs::kGuildNo].AsInt()] = a.tid;
    }
    return Status::Ok();
  }

  Status Exec(const std::string& mql) { return ToStatus(sess_->Execute(mql)); }

  /// Execute a prepared MODIFY and insist it hit its atom — a 0-count means
  /// the key vanished, which the oracle must hear about as corruption, not
  /// as a silently-skipped update.
  Status ExecModify(size_t slot) {
    PRIMA_ASSIGN_OR_RETURN(auto r, sess_->ExecutePrepared(slot));
    if (r.kind == mql::ExecResult::Kind::kCount && r.count == 0) {
      return Status::Corruption("MODIFY matched no atom: " +
                                std::string(kSlotMql[slot]));
    }
    return Status::Ok();
  }

  /// Keyed single-atom read through a prepared SELECT.
  Result<int64_t> ReadInt(size_t slot, int64_t key, size_t attr) {
    PRIMA_RETURN_IF_ERROR(sess_->Bind(slot, 0, Value::Int(key)));
    PRIMA_ASSIGN_OR_RETURN(auto r, sess_->ExecutePrepared(slot));
    if (r.molecules.molecules.size() != 1) {
      return Status::Corruption("keyed read found " +
                                std::to_string(r.molecules.molecules.size()) +
                                " atoms");
    }
    return r.molecules.molecules[0].groups[0].atoms[0].attrs[attr].AsInt();
  }

  /// Touch-lock: acquire the write lock via a no-payload MODIFY before
  /// reading, so the read-modify-write below cannot lose an update (plain
  /// reads take no locks in PRIMA).
  Status Touch(size_t slot, int64_t key, uint64_t seq) {
    PRIMA_RETURN_IF_ERROR(sess_->Bind(slot, 0, Value::Int(
        static_cast<int64_t>(seq))));
    PRIMA_RETURN_IF_ERROR(sess_->Bind(slot, 1, Value::Int(key)));
    return ExecModify(slot);
  }

  Status SetInt(size_t slot, int64_t key, int64_t value) {
    PRIMA_RETURN_IF_ERROR(sess_->Bind(slot, 0, Value::Int(value)));
    PRIMA_RETURN_IF_ERROR(sess_->Bind(slot, 1, Value::Int(key)));
    return ExecModify(slot);
  }

  Status WriteMarker(uint64_t seq) {
    PRIMA_RETURN_IF_ERROR(sess_->Bind(kMarker, 0, Value::Int(
        static_cast<int64_t>(seq))));
    PRIMA_RETURN_IF_ERROR(sess_->Bind(kMarker, 1, Value::Int(sid_)));
    return ExecModify(kMarker);
  }

  /// One self-contained attempt: BEGIN, the op's statements, then COMMIT —
  /// or ABORT on any failure (so a transient conflict leaves nothing held
  /// and the retry loop can simply re-run) and on the storm's voluntary
  /// aborts.
  Status ExecOp(const Op& op) {
    PRIMA_RETURN_IF_ERROR(Exec("BEGIN WORK"));
    Status st = OpBody(op);
    if (!st.ok()) {
      (void)Exec("ABORT WORK");
      return st;
    }
    if (op.voluntary_abort) return Exec("ABORT WORK");
    return Exec("COMMIT WORK");
  }

  Status OpBody(const Op& op) {
    switch (op.kind) {
      case OpKind::kLogin: {
        return ReadInt(kSelPlayer, op.player_a, MmoAttrs::kPlayerGold)
            .status();
      }
      case OpKind::kItemGrant: {
        PRIMA_RETURN_IF_ERROR(Touch(kTouchItem, op.item, op.seq));
        PRIMA_ASSIGN_OR_RETURN(
            const int64_t count,
            ReadInt(kSelItem, op.item, MmoAttrs::kItemCount));
        PRIMA_RETURN_IF_ERROR(
            SetInt(kSetItemCount, op.item, count + op.amount));
        return WriteMarker(op.seq);
      }
      case OpKind::kGoldTransfer: {
        // Canonical lock order: both transfer directions touch the lower
        // player_no first, so two concurrent transfers over the same pair
        // fight over one lock instead of two.
        const int lo = std::min(op.player_a, op.player_b);
        const int hi = std::max(op.player_a, op.player_b);
        PRIMA_RETURN_IF_ERROR(Touch(kTouchPlayer, lo, op.seq));
        PRIMA_RETURN_IF_ERROR(Touch(kTouchPlayer, hi, op.seq));
        PRIMA_ASSIGN_OR_RETURN(
            const int64_t from_gold,
            ReadInt(kSelPlayer, op.player_a, MmoAttrs::kPlayerGold));
        PRIMA_ASSIGN_OR_RETURN(
            const int64_t to_gold,
            ReadInt(kSelPlayer, op.player_b, MmoAttrs::kPlayerGold));
        PRIMA_RETURN_IF_ERROR(
            SetInt(kSetGold, op.player_a, from_gold - op.amount));
        PRIMA_RETURN_IF_ERROR(
            SetInt(kSetGold, op.player_b, to_gold + op.amount));
        return WriteMarker(op.seq);
      }
      case OpKind::kGuildJoin: {
        // MODIFY (not CONNECT): ModifyAtom locks the OLD guild's atom too,
        // so the departure edit of its member list cannot race another
        // transaction.
        PRIMA_RETURN_IF_ERROR(
            sess_->Bind(kSetGuild, 0, Value::Ref(guild_tids_[op.guild])));
        PRIMA_RETURN_IF_ERROR(
            sess_->Bind(kSetGuild, 1, Value::Int(op.player_a)));
        PRIMA_RETURN_IF_ERROR(ExecModify(kSetGuild));
        return WriteMarker(op.seq);
      }
      case OpKind::kGuildLeave: {
        PRIMA_RETURN_IF_ERROR(
            Exec("DISCONNECT " + player_tids_[op.player_a].ToString() +
                 ".guild FROM " + guild_tids_[op.guild].ToString()));
        return WriteMarker(op.seq);
      }
      case OpKind::kRosterScan: {
        PRIMA_RETURN_IF_ERROR(sess_->Bind(kRoster, 0, Value::Int(op.guild)));
        PRIMA_ASSIGN_OR_RETURN(
            const uint64_t n,
            sess_->ScanPrepared(kRoster, cfg_.roster_isolation));
        scanned_->fetch_add(n, std::memory_order_relaxed);
        return Status::Ok();
      }
      case OpKind::kQuestTick: {
        PRIMA_RETURN_IF_ERROR(Touch(kTouchQuest, op.quest, op.seq));
        PRIMA_ASSIGN_OR_RETURN(
            const int64_t ticks,
            ReadInt(kSelQuest, op.quest, MmoAttrs::kQuestTicks));
        PRIMA_RETURN_IF_ERROR(SetInt(kSetTicks, op.quest, ticks + 1));
        return WriteMarker(op.seq);
      }
    }
    return Status::InvalidArgument("unknown op kind");
  }

  MmoDriver* driver_;
  const MmoConfig& cfg_;
  int sid_;
  obs::Histogram* hist_;
  std::atomic<uint64_t>* retries_;
  std::atomic<uint64_t>* scanned_;
  std::atomic<uint64_t>* voluntary_;
  std::unique_ptr<MmoSession> sess_;
  std::vector<Tid> player_tids_;
  std::vector<Tid> guild_tids_;
  std::vector<int> guild_of_;  ///< only this session's slice is maintained
};

MmoDriver::MmoDriver(core::Prima* db, MmoConfig cfg)
    : db_(db), cfg_(std::move(cfg)) {}

MmoDriver::MmoDriver(std::string host, uint16_t port, MmoConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.host = std::move(host);
  cfg_.port = port;
}

Result<MmoRunResult> MmoDriver::Run() {
  shadow_ = std::make_unique<MmoShadow>(cfg_);
  std::vector<obs::Histogram> hist(kOpKinds);
  std::atomic<uint64_t> retries{0}, scanned{0}, voluntary{0};

  std::vector<std::unique_ptr<SessionRunner>> runners;
  runners.reserve(cfg_.sessions);
  for (int s = 0; s < cfg_.sessions; ++s) {
    runners.push_back(std::make_unique<SessionRunner>(
        this, s, hist.data(), &retries, &scanned, &voluntary));
  }
  std::vector<Status> outcome(cfg_.sessions);
  {
    std::vector<std::thread> threads;
    threads.reserve(cfg_.sessions);
    for (int s = 0; s < cfg_.sessions; ++s) {
      threads.emplace_back(
          [&outcome, &runners, s] { outcome[s] = runners[s]->Run(); });
    }
    for (auto& t : threads) t.join();
  }
  for (const Status& st : outcome) PRIMA_RETURN_IF_ERROR(st);

  MmoRunResult result;
  for (auto& runner : runners) {
    for (const Op& op : runner->acked_) shadow_->Apply(op);
    result.ops_acked += runner->acked_.size();
  }
  result.ops_aborted = voluntary.load();
  result.retries = retries.load();
  result.molecules_scanned = scanned.load();
  for (int k = 0; k < kOpKinds; ++k) result.latency_us[k] = hist[k].Snapshot();
  if (db_ != nullptr) {
    // Surface the driver's retry decisions through the kernel's counter, so
    // Prima::stats(), MetricsText(), and ServerStats report them. (A wire
    // driver retries on its own side of the connection; the server cannot
    // see those, so remote runs report retries from MmoRunResult instead.)
    db_->transactions().stats().txn_retries.fetch_add(
        result.retries, std::memory_order_relaxed);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

MmoOracle::MmoOracle(MmoConfig cfg) : cfg_(std::move(cfg)), shadow_(cfg_) {}

void MmoOracle::RebuildFromMarkers(const std::vector<int64_t>& markers) {
  shadow_ = MmoShadow(cfg_);
  std::vector<int> guild_of(cfg_.players, -1);
  for (int s = 0; s < cfg_.sessions; ++s) {
    const int64_t marker = s < static_cast<int>(markers.size()) ? markers[s] : 0;
    // A session's writes commit strictly in seq order (sequential session,
    // transient failures retried to success), so the recovered marker is a
    // prefix certificate: write ops <= marker committed, everything later
    // did not. Reads never mark; replaying them is a no-op.
    for (uint64_t seq = 1; seq <= static_cast<uint64_t>(marker); ++seq) {
      const Op op = PlanOp(cfg_, s, seq, guild_of);
      if (op.voluntary_abort || !op.IsWrite()) continue;
      shadow_.Apply(op);
      if (op.kind == OpKind::kGuildJoin) guild_of[op.player_a] = op.guild;
      if (op.kind == OpKind::kGuildLeave) guild_of[op.player_a] = -1;
    }
  }
}

namespace {
Status Mismatch(const std::string& what, int64_t expected, int64_t found) {
  return Status::Corruption("oracle mismatch: " + what + ": expected " +
                            std::to_string(expected) + ", found " +
                            std::to_string(found));
}
}  // namespace

Status MmoOracle::Audit(core::Prima* db) const {
  // Guilds first: tid map + the members side of the association.
  PRIMA_ASSIGN_OR_RETURN(auto guilds, db->Query("SELECT ALL FROM guild"));
  if (guilds.size() != static_cast<size_t>(cfg_.guilds)) {
    return Mismatch("guild count", cfg_.guilds,
                    static_cast<int64_t>(guilds.size()));
  }
  std::vector<Tid> guild_tids(cfg_.guilds);
  std::vector<std::vector<uint64_t>> members(cfg_.guilds);
  for (const auto& m : guilds.molecules) {
    const access::Atom& g = m.groups[0].atoms[0];
    const int no = static_cast<int>(g.attrs[MmoAttrs::kGuildNo].AsInt());
    guild_tids[no] = g.tid;
    const Value& list = g.attrs[MmoAttrs::kGuildMembers];
    if (!list.is_null()) {
      for (const Value& e : list.elems()) {
        members[no].push_back(e.AsTid().Pack());
      }
    }
  }

  // Players: exact gold, and the guild side of the association.
  PRIMA_ASSIGN_OR_RETURN(auto players, db->Query("SELECT ALL FROM player"));
  if (players.size() != static_cast<size_t>(cfg_.players)) {
    return Mismatch("player count", cfg_.players,
                    static_cast<int64_t>(players.size()));
  }
  std::vector<std::vector<uint64_t>> expected_members(cfg_.guilds);
  int64_t db_gold_total = 0;
  for (const auto& m : players.molecules) {
    const access::Atom& p = m.groups[0].atoms[0];
    const int no = static_cast<int>(p.attrs[MmoAttrs::kPlayerNo].AsInt());
    const int64_t gold = p.attrs[MmoAttrs::kPlayerGold].AsInt();
    db_gold_total += gold;
    if (gold != shadow_.gold(no)) {
      return Mismatch("player " + std::to_string(no) + " gold",
                      shadow_.gold(no), gold);
    }
    const int expected_guild = shadow_.guild_of(no);
    const Value& guild_ref = p.attrs[MmoAttrs::kPlayerGuild];
    if (expected_guild < 0) {
      if (!guild_ref.is_null() && !guild_ref.AsTid().IsNull()) {
        return Status::Corruption("oracle mismatch: player " +
                                  std::to_string(no) +
                                  " should be guildless but references " +
                                  guild_ref.AsTid().ToString());
      }
    } else {
      if (guild_ref.is_null() ||
          guild_ref.AsTid().Pack() != guild_tids[expected_guild].Pack()) {
        return Status::Corruption(
            "oracle mismatch: player " + std::to_string(no) +
            " should be in guild " + std::to_string(expected_guild));
      }
      expected_members[expected_guild].push_back(p.tid.Pack());
    }
  }

  // Conservation: gold is transferred, never minted or burned.
  const int64_t expected_total =
      static_cast<int64_t>(cfg_.players) * cfg_.initial_gold;
  if (db_gold_total != expected_total) {
    return Mismatch("total gold (conservation)", expected_total,
                    db_gold_total);
  }

  // Membership symmetry + the <= 1 guild invariant: each guild's member
  // list must be exactly the players whose guild ref points at it — a tid
  // in two lists or a dangling back-reference both fail here.
  for (int g = 0; g < cfg_.guilds; ++g) {
    auto got = members[g];
    auto want = expected_members[g];
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      return Status::Corruption(
          "oracle mismatch: guild " + std::to_string(g) + " member list has " +
          std::to_string(got.size()) + " entries, expected " +
          std::to_string(want.size()) + " (or differing tids)");
    }
  }

  // Inventory balance: count == grants applied, value for value.
  PRIMA_ASSIGN_OR_RETURN(auto items, db->Query("SELECT ALL FROM item"));
  for (const auto& m : items.molecules) {
    const access::Atom& it = m.groups[0].atoms[0];
    const int no = static_cast<int>(it.attrs[MmoAttrs::kItemNo].AsInt());
    const int64_t count = it.attrs[MmoAttrs::kItemCount].AsInt();
    if (count != shadow_.item_count(no)) {
      return Mismatch("item " + std::to_string(no) + " count",
                      shadow_.item_count(no), count);
    }
  }
  PRIMA_ASSIGN_OR_RETURN(auto quests, db->Query("SELECT ALL FROM quest"));
  for (const auto& m : quests.molecules) {
    const access::Atom& q = m.groups[0].atoms[0];
    const int no = static_cast<int>(q.attrs[MmoAttrs::kQuestNo].AsInt());
    const int64_t ticks = q.attrs[MmoAttrs::kQuestTicks].AsInt();
    if (ticks != shadow_.quest_ticks(no)) {
      return Mismatch("quest " + std::to_string(no) + " ticks",
                      shadow_.quest_ticks(no), ticks);
    }
  }
  return Status::Ok();
}

Result<std::vector<int64_t>> ReadMarkers(core::Prima* db, int sessions) {
  PRIMA_ASSIGN_OR_RETURN(auto accounts, db->Query("SELECT ALL FROM account"));
  std::vector<int64_t> markers(sessions, 0);
  for (const auto& m : accounts.molecules) {
    const access::Atom& a = m.groups[0].atoms[0];
    const int no = static_cast<int>(a.attrs[MmoAttrs::kAccountNo].AsInt());
    if (no >= 0 && no < sessions && !a.attrs[MmoAttrs::kAccountLastOp].is_null()) {
      markers[no] = a.attrs[MmoAttrs::kAccountLastOp].AsInt();
    }
  }
  return markers;
}

}  // namespace prima::workloads
