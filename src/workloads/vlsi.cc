#include "workloads/vlsi.h"

#include <set>

namespace prima::workloads {

using access::AttrValue;
using access::Tid;
using access::Value;
using util::Result;
using util::Status;

namespace {
const char* kSchema[] = {
    "CREATE ATOM_TYPE cell"
    " ( cell_id : IDENTIFIER,"
    "   cell_no : INTEGER,"
    "   kind : CHAR_VAR,"
    "   x : INTEGER,"
    "   y : INTEGER,"
    "   pins : SET_OF (REF_TO (pin.cell)) )"
    " KEYS_ARE (cell_no)",

    "CREATE ATOM_TYPE pin"
    " ( pin_id : IDENTIFIER,"
    "   pin_no : INTEGER,"
    "   cell : REF_TO (cell.pins),"
    "   nets : SET_OF (REF_TO (net.pins)) )",

    "CREATE ATOM_TYPE net"
    " ( net_id : IDENTIFIER,"
    "   net_no : INTEGER,"
    "   signal : CHAR_VAR,"
    "   pins : SET_OF (REF_TO (pin.nets)) (2,VAR) )"
    " KEYS_ARE (net_no)",
};

const char* kCellKinds[] = {"nand", "nor", "inv", "dff", "mux", "buf"};
}  // namespace

Status VlsiWorkload::CreateSchema() {
  for (const char* stmt : kSchema) {
    auto r = db_->Execute(stmt);
    if (!r.ok()) return r.status();
  }
  return Status::Ok();
}

Result<VlsiWorkload::Circuit> VlsiWorkload::Generate(int n_cells,
                                                     int pins_per_cell,
                                                     int n_nets,
                                                     int64_t die_size,
                                                     uint64_t seed) {
  access::AccessSystem& access = db_->access();
  const access::Catalog& catalog = access.catalog();
  const auto* cell_def = catalog.FindAtomType("cell");
  const auto* pin_def = catalog.FindAtomType("pin");
  const auto* net_def = catalog.FindAtomType("net");
  if (cell_def == nullptr || pin_def == nullptr || net_def == nullptr) {
    return Status::InvalidArgument("VLSI schema not installed");
  }
  util::Random rng(seed);
  Circuit out;

  const uint16_t cell_no = cell_def->FindAttr("cell_no")->id;
  const uint16_t kind = cell_def->FindAttr("kind")->id;
  const uint16_t x = cell_def->FindAttr("x")->id;
  const uint16_t y = cell_def->FindAttr("y")->id;
  for (int c = 0; c < n_cells; ++c) {
    PRIMA_ASSIGN_OR_RETURN(
        const Tid t,
        access.InsertAtom(
            cell_def->id,
            {AttrValue{cell_no, Value::Int(c + 1)},
             AttrValue{kind, Value::String(kCellKinds[rng.Uniform(6)])},
             AttrValue{x, Value::Int(rng.Range(0, die_size - 1))},
             AttrValue{y, Value::Int(rng.Range(0, die_size - 1))}}));
    out.cells.push_back(t);
  }

  const uint16_t pin_no = pin_def->FindAttr("pin_no")->id;
  const uint16_t pin_cell = pin_def->FindAttr("cell")->id;
  int next_pin = 1;
  for (const Tid& c : out.cells) {
    for (int p = 0; p < pins_per_cell; ++p) {
      PRIMA_ASSIGN_OR_RETURN(
          const Tid t,
          access.InsertAtom(pin_def->id,
                            {AttrValue{pin_no, Value::Int(next_pin++)},
                             AttrValue{pin_cell, Value::Ref(c)}}));
      out.pins.push_back(t);
    }
  }

  const uint16_t net_no = net_def->FindAttr("net_no")->id;
  const uint16_t signal = net_def->FindAttr("signal")->id;
  const uint16_t net_pins = net_def->FindAttr("pins")->id;
  for (int n = 0; n < n_nets; ++n) {
    const int fanout = static_cast<int>(rng.Range(2, 5));
    std::vector<Value> pins;
    std::set<uint64_t> used;
    for (int f = 0; f < fanout && used.size() < out.pins.size(); ++f) {
      const Tid p = out.pins[rng.Uniform(out.pins.size())];
      if (!used.insert(p.Pack()).second) {
        --f;
        continue;
      }
      pins.push_back(Value::Ref(p));
    }
    PRIMA_ASSIGN_OR_RETURN(
        const Tid t,
        access.InsertAtom(
            net_def->id,
            {AttrValue{net_no, Value::Int(n + 1)},
             AttrValue{signal, Value::String("sig" + std::to_string(n + 1))},
             AttrValue{net_pins, Value::List(std::move(pins))}}));
    out.nets.push_back(t);
  }
  return out;
}

}  // namespace prima::workloads
