#ifndef PRIMA_WORKLOADS_MMO_H_
#define PRIMA_WORKLOADS_MMO_H_

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/prima.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/retry.h"

namespace prima::workloads {

/// Multi-user online workload: a game-backend persistence scenario — the
/// OLTP counterpart to the engineering workloads (brep/geo/vlsi). Thousands
/// of small keyed reads and writes over shared hot rows, with one molecule
/// query ("a guild and its members and their inventories") standing in for
/// the structured reads the paper's molecule model was built for.
///
/// The subsystem has four parts:
///   MmoWorkload  — schema installer + deterministic populator
///   PlanOp       — deterministic, seedable op generator (Zipfian skew)
///   MmoDriver    — N session threads, in-process or over the wire, every
///                  op via prepared statements inside explicit transactions
///   MmoOracle    — client-side shadow of every ACKNOWLEDGED commit, plus
///                  conservation invariants; audits a live database after a
///                  clean run, an ABORT storm, or a kill -9 mid-storm
///
/// Correctness-by-construction choices the oracle leans on:
///   * Every read-modify-write (gold, item count, quest ticks) runs under
///     the touch-lock idiom — a dummy MODIFY acquires the write lock BEFORE
///     the read — so lost updates are impossible and the final value of a
///     counter is exactly initial + sum of committed deltas, in any commit
///     order (the deltas commute).
///   * Guild membership does not commute (last writer wins), so each
///     session owns a disjoint slice of the players (player_no % sessions)
///     and only ever joins/leaves with its own players; per-player guild
///     history is then the owner session's sequential op order.
///   * Every write transaction also stamps its session's account atom with
///     the op sequence number (`last_op`). Because a session is sequential
///     and retries transient failures until success, the recovered marker
///     after a crash identifies EXACTLY which generated ops committed, and
///     the oracle rebuilds its shadow from the seed + the marker alone.
struct MmoConfig {
  uint64_t seed = 42;
  int sessions = 4;
  uint64_t ops_per_session = 200;
  int players = 64;   ///< must be >= sessions
  int guilds = 8;
  int items_per_player = 2;
  int quests_per_player = 1;
  int64_t initial_gold = 1000;

  /// Op mix weights (any non-negative ints; zero removes the op type).
  struct Mix {
    int login = 25;        ///< keyed read of one player
    int item_grant = 15;   ///< RMW: item count += amount
    int gold_transfer = 20;///< RMW on two players, canonical lock order
    int guild_join = 10;   ///< MODIFY player SET guild (locks old+new guild)
    int guild_leave = 5;   ///< DISCONNECT from the current guild
    int roster_scan = 15;  ///< guild-player-item molecule scan
    int quest_tick = 10;   ///< RMW: ticks += 1
  } mix;

  /// Fraction of ops executed fully and then ABORTed instead of committed
  /// (the ABORT-storm drive). The decision is part of the deterministic op
  /// stream, so the oracle knows these never count.
  double abort_fraction = 0.0;

  /// Isolation for the roster molecule scan (other ops always read
  /// latest-committed inside their locking transaction).
  core::Isolation roster_isolation = core::Isolation::kLatestCommitted;

  /// Retry budget per op (0 = forever; crash drives use forever so the
  /// acked-op protocol is never abandoned mid-sequence).
  int max_attempts = 0;

  /// Over-the-wire mode: connect each session to this server instead of
  /// opening in-process sessions (MmoDriver's wire constructor sets these).
  std::string host;
  uint16_t port = 0;
};

enum class OpKind : uint8_t {
  kLogin = 0,
  kItemGrant,
  kGoldTransfer,
  kGuildJoin,
  kGuildLeave,
  kRosterScan,
  kQuestTick,
};
inline constexpr int kOpKinds = 7;
const char* OpKindName(OpKind k);

/// One generated operation — fully determined by (config, session, seq, and
/// the session's own guild-membership history).
struct Op {
  OpKind kind = OpKind::kLogin;
  int session = 0;
  uint64_t seq = 0;           ///< 1-based per session
  bool voluntary_abort = false;
  int player_a = 0;           ///< primary player (transfer source / owner)
  int player_b = 0;           ///< transfer destination
  int item = 0;
  int quest = 0;
  int guild = 0;              ///< join target / leave source / scan target
  int64_t amount = 0;         ///< gold moved or items granted

  bool IsWrite() const {
    return kind != OpKind::kLogin && kind != OpKind::kRosterScan;
  }
};

/// Plan op `seq` of `session` deterministically. `guild_of` is the session's
/// view of per-player membership (index = player_no, -1 = none) — only the
/// session's own players are consulted, so the driver thread and the oracle
/// replay reach identical decisions without sharing state. A kGuildLeave
/// drawn while the chosen player is guildless resolves to a kGuildJoin.
Op PlanOp(const MmoConfig& cfg, int session, uint64_t seq,
          const std::vector<int>& guild_of);

/// Schema installer + deterministic populator.
class MmoWorkload {
 public:
  explicit MmoWorkload(core::Prima* db) : db_(db) {}

  /// Install the six atom types and their association pairs. Verifies that
  /// the attribute positions match the kAttr constants below (wire-mode
  /// drivers decode atoms positionally, without a catalog).
  util::Status CreateSchema();

  /// Insert cfg.sessions accounts, cfg.players players (initial_gold each,
  /// no guild), cfg.guilds guilds, and per-player items/quests. Not crash-
  /// durable by itself — callers that fork a storm should Flush() after.
  util::Status Populate(const MmoConfig& cfg);

 private:
  core::Prima* db_;
};

/// Positional attribute indexes of the MMO schema (SELECT ALL order). The
/// installer cross-checks them against the catalog.
struct MmoAttrs {
  static constexpr size_t kAccountNo = 1, kAccountLastOp = 2;
  static constexpr size_t kPlayerNo = 1, kPlayerGold = 3, kPlayerTouch = 4,
                          kPlayerGuild = 6;
  static constexpr size_t kGuildNo = 1, kGuildMembers = 3;
  static constexpr size_t kItemNo = 1, kItemCount = 3, kItemTouch = 4;
  static constexpr size_t kQuestNo = 1, kQuestTicks = 2, kQuestTouch = 3;
};

/// Client-side shadow of the database: expected value of every counter and
/// membership after a set of acknowledged ops.
class MmoShadow {
 public:
  explicit MmoShadow(const MmoConfig& cfg);
  void Apply(const Op& op);

  int64_t gold(int p) const { return gold_[p]; }
  int guild_of(int p) const { return guild_of_[p]; }
  int64_t item_count(int i) const { return items_[i]; }
  int64_t quest_ticks(int q) const { return quests_[q]; }
  int64_t total_gold() const;

 private:
  std::vector<int64_t> gold_;
  std::vector<int> guild_of_;
  std::vector<int64_t> items_;
  std::vector<int64_t> quests_;
};

/// Per-run results: per-op-type latency (microseconds, end-to-end including
/// retries) and driver counters.
struct MmoRunResult {
  uint64_t ops_acked = 0;
  uint64_t ops_aborted = 0;   ///< voluntary (storm) aborts
  uint64_t retries = 0;       ///< transient-conflict re-runs across sessions
  uint64_t molecules_scanned = 0;
  obs::HistogramSnapshot latency_us[kOpKinds];
};

/// The multi-session driver. Each of cfg.sessions threads opens its own
/// session (core::Session in-process, net::Client over the wire), prepares
/// its statement set once, and executes its deterministic op stream — every
/// op inside an explicit transaction, transient conflicts retried through
/// util::RetryTransient with bounded backoff.
class MmoDriver {
 public:
  /// In-process driver over `db` (also the kernel whose txn_retries counter
  /// absorbs this run's retries, so they surface through Prima::stats()).
  MmoDriver(core::Prima* db, MmoConfig cfg);
  /// Wire driver: one net::Client per session thread against host:port.
  MmoDriver(std::string host, uint16_t port, MmoConfig cfg);

  /// Called after every acknowledged COMMIT, from the session's thread —
  /// the crash drive publishes its acked high-water marks through this.
  void set_ack_hook(std::function<void(const Op&)> hook) {
    ack_hook_ = std::move(hook);
  }

  /// Run the full workload. On success the shadow holds every acknowledged
  /// op, in a state equivalent to any serialization of the commits.
  util::Result<MmoRunResult> Run();

  const MmoShadow& shadow() const { return *shadow_; }
  const MmoConfig& config() const { return cfg_; }

 private:
  class SessionRunner;

  core::Prima* db_ = nullptr;  ///< null in wire mode
  MmoConfig cfg_;
  std::function<void(const Op&)> ack_hook_;
  std::unique_ptr<MmoShadow> shadow_;
};

/// The correctness oracle: a shadow rebuilt from acknowledged ops (clean and
/// ABORT-storm runs) or from the recovered per-session `last_op` markers
/// (crash drive), audited value-for-value against a live database.
class MmoOracle {
 public:
  explicit MmoOracle(MmoConfig cfg);

  /// Adopt a driver's post-run shadow (clean / storm runs).
  void AdoptShadow(const MmoShadow& shadow) { shadow_ = shadow; }

  /// Crash drive: replay each session's deterministic op stream up to its
  /// recovered marker. Because writes commit strictly in sequence order per
  /// session, the committed set is exactly {write ops with seq <= marker}
  /// minus the voluntary aborts.
  void RebuildFromMarkers(const std::vector<int64_t>& markers);

  /// Full audit: every player's gold, guild membership (both directions of
  /// the association), item counts, quest ticks — value for value against
  /// the shadow — plus the conservation invariants: total gold unchanged
  /// (transferred, never minted), each player in <= 1 guild, inventory
  /// counts equal grants applied. Returns the first mismatch found.
  util::Status Audit(core::Prima* db) const;

  const MmoShadow& shadow() const { return shadow_; }

 private:
  MmoConfig cfg_;
  MmoShadow shadow_;
};

/// Read the per-session `last_op` markers (index = account_no) from a live
/// (e.g. just-recovered) database.
util::Result<std::vector<int64_t>> ReadMarkers(core::Prima* db, int sessions);

}  // namespace prima::workloads

#endif  // PRIMA_WORKLOADS_MMO_H_
