#ifndef PRIMA_WORKLOADS_GEO_H_
#define PRIMA_WORKLOADS_GEO_H_

#include <vector>

#include "core/prima.h"
#include "util/random.h"

namespace prima::workloads {

/// Map handling for geographic information systems (the third application
/// area of §1): maps composed of regions, regions bounded by border lines
/// that are *shared* between adjacent regions — the paper's prime example
/// of non-disjoint molecules (overlapping n:m decompositions).
class GeoWorkload {
 public:
  explicit GeoWorkload(core::Prima* db) : db_(db) {}

  util::Status CreateSchema();

  struct MapData {
    access::Tid map;
    std::vector<access::Tid> regions;
    std::vector<access::Tid> borders;
  };

  /// Generate one map as a rows x cols grid of regions; adjacent regions
  /// share their border atom (n:m sharing: every interior border belongs to
  /// exactly two regions).
  util::Result<MapData> GenerateGrid(int64_t map_no, int rows, int cols,
                                     uint64_t seed);

 private:
  core::Prima* db_;
};

}  // namespace prima::workloads

#endif  // PRIMA_WORKLOADS_GEO_H_
