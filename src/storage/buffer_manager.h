#ifndef PRIMA_STORAGE_BUFFER_MANAGER_H_
#define PRIMA_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/block_device.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::storage {

/// Globally unique page address.
struct PageId {
  SegmentId segment = 0;
  uint32_t page = 0;

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.segment == b.segment && a.page == b.page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.segment) << 32) |
                                 id.page);
  }
};

/// Replacement policy (paper §3.3). The paper discusses two ways to manage
/// different page sizes in one buffer: static partitioning ("not very
/// flexible when reference patterns change") and a modified LRU that handles
/// multiple sizes directly — the one PRIMA adopts. Both are implemented so
/// the claim is benchmarkable (experiment E10). Replacement within a chain
/// is clock / second-chance: the reference bit is set only on a buffer HIT
/// (never on first insertion), so a page that is fixed once and never
/// touched again is evicted exactly when plain LRU would evict it.
enum class BufferPolicy {
  kUnifiedLru,         ///< single chain, byte-budget, size-aware eviction
  kStaticPartitioned,  ///< one classic pool per page size, fixed budgets
};

struct BufferStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> writebacks{0};
  std::atomic<uint64_t> prefetched_pages{0};
  /// Async read-ahead accounting (StorageSystem::ReadAhead): batches that
  /// reached the prefetcher vs. hints dropped because the in-flight window
  /// was full.
  std::atomic<uint64_t> readahead_batches{0};
  std::atomic<uint64_t> readahead_dropped{0};

  double HitRatio() const {
    const uint64_t h = hits, m = misses;
    return (h + m) == 0 ? 0.0 : static_cast<double>(h) / (h + m);
  }
  void Reset() {
    hits = misses = evictions = writebacks = prefetched_pages = 0;
    readahead_batches = readahead_dropped = 0;
  }
};

/// Point-in-time copy of the pool's counters, whole-pool and per shard
/// (surfaced on Prima::stats()). Unlike BufferStats this is plain data:
/// safe to copy around, print, or diff before/after a workload.
struct BufferStatsSnapshot {
  struct Shard {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t prefetched_pages = 0;
    uint64_t resident_bytes = 0;
  };

  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t prefetched_pages = 0;
  uint64_t readahead_batches = 0;
  uint64_t readahead_dropped = 0;
  std::vector<Shard> shards;

  double HitRatio() const {
    return (hits + misses) == 0
               ? 0.0
               : static_cast<double>(hits) / (hits + misses);
  }
};

/// One buffered page. Callers access frames only through PageGuard
/// (storage_system.h); the latch serializes readers/writers of the bytes.
struct Frame {
  PageId id;
  uint32_t size = 0;
  std::unique_ptr<char[]> data;
  // Atomic so MarkDirty stays lock-free: guard holders set it while
  // latched, and taking the pool mutex there would deadlock against a
  // flusher that holds the mutex while waiting for the latch.
  std::atomic<bool> dirty{false};
  uint32_t pins = 0;
  std::shared_mutex latch;
  // Last checkpoint epoch in which this frame's changes were logged; a
  // mismatch with the WAL's current epoch makes the next logged change a
  // full-page image (torn-page protection). Guarded by the frame latch.
  uint64_t wal_epoch = 0;
  // Clock / second-chance bit: set on every buffer hit, cleared when the
  // sweep passes the frame. Guarded by the owning shard's mutex.
  bool referenced = false;
  // Position in the owning clock ring (valid while resident). Front of the
  // ring is where the sweep hand points next.
  std::list<Frame*>::iterator ring_pos;
};

/// The database buffer: holds pages of all five sizes simultaneously.
///
/// Sharded for concurrency: the frame table is split into N partitions by
/// page-id hash, each with its own mutex, its own clock ring(s), and an
/// equal slice of the byte budget, so concurrent fixes of unrelated pages
/// never serialize on one pool-wide lock. Victim selection within a shard
/// is clock / second-chance (reference bit set on hits only — see
/// BufferPolicy), replacing the old global-LRU-under-mutex.
///
/// Compatibility contract: with `shards` == 1 (the default, and what every
/// pre-sharding caller gets) the pool is behaviorally indistinguishable
/// from the unsharded manager — one budget, one victim ring, the same
/// eviction order for workloads whose resident pages are touched at most
/// once between misses, and the identical Fix/TryFix/WriteBack/FlushAll
/// semantics including the WAL write-back rule.
///
/// Thread-safe; page content accesses are serialized by per-frame latches
/// taken by PageGuard.
class BufferManager {
 public:
  /// budget_bytes is the total data budget across all page sizes; each of
  /// the `shards` partitions manages budget_bytes / shards of it.
  BufferManager(BlockDevice* device, size_t budget_bytes, BufferPolicy policy,
                size_t shards = 1);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pin the page, reading it from the device if absent. `page_size` must be
  /// the page size of the segment. If `format_new` is true the page is not
  /// read from the device; the frame starts zeroed (used for freshly
  /// allocated pages). The returned frame is pinned but not latched.
  util::Result<Frame*> Fix(PageId id, uint32_t page_size, bool format_new);

  /// Pin the page only if it is already resident; returns nullptr without
  /// touching the device otherwise. Used by parallel recovery apply: a
  /// resident frame (e.g. a segment header loaded at Open) must be updated
  /// in place or it would shadow a direct device write, while non-resident
  /// pages are replayed device-side without polluting the buffer. Does not
  /// count a hit or set the reference bit — it is a probe, not an access.
  Frame* TryFix(PageId id);

  /// Release one pin.
  void Unfix(Frame* frame);

  /// Mark a pinned frame dirty (caller holds the exclusive latch).
  void MarkDirty(Frame* frame);

  /// Load all missing pages of the list with a single chained device read
  /// (the page-sequence fast path, experiment E9). No pins are taken.
  util::Status Prefetch(SegmentId segment, const std::vector<uint32_t>& pages,
                        uint32_t page_size);

  /// Write back every dirty page (sealing checksums). Pages stay resident.
  util::Status FlushAll();

  /// Drop all pages of a segment without write-back (segment drop).
  /// Fails if any of them is pinned.
  util::Status Discard(SegmentId segment);

  /// Attach (or detach, with nullptr) the write-ahead log. While attached,
  /// the WAL rule is enforced on every write-back: a dirty page whose
  /// page-LSN exceeds the durable LSN forces the log first, and PageGuard
  /// logs physiological redo for every page it mutates.
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() const { return wal_; }

  /// Disable the destructor's best-effort FlushAll (WAL-owned durability:
  /// unlogged destructor write-backs would diverge the device from the
  /// last checkpoint's redo basis).
  void set_flush_on_close(bool v) { flush_on_close_ = v; }

  BufferStats& stats() { return stats_; }
  size_t resident_bytes() const;
  size_t shard_count() const { return shards_.size(); }

  /// Consistent copy of the whole-pool counters plus each shard's share.
  BufferStatsSnapshot SnapshotStats() const;

 private:
  /// One partition of the pool: its own lock, frame table, clock ring(s)
  /// and budget slice. The per-shard counters are atomics because
  /// write-backs (FlushAll) run outside the shard mutex.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, std::unique_ptr<Frame>, PageIdHash> frames;
    // Unified policy uses ring 0 / budget 0 only; partitioned uses one ring
    // per size class. Front = sweep hand.
    std::list<Frame*> ring[5];
    size_t budget[5] = {0, 0, 0, 0, 0};
    size_t used[5] = {0, 0, 0, 0, 0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> writebacks{0};
    std::atomic<uint64_t> prefetched{0};
  };

  Shard& ShardOf(PageId id) {
    return *shards_[PageIdHash()(id) % shards_.size()];
  }
  const Shard& ShardOf(PageId id) const {
    return *shards_[PageIdHash()(id) % shards_.size()];
  }

  // Size-class index for the partitioned policy.
  static int SizeClass(uint32_t page_size);
  int ChainOf(uint32_t page_size) const {
    return policy_ == BufferPolicy::kUnifiedLru ? 0 : SizeClass(page_size);
  }

  // Ensure `bytes` fit in the shard's (sub-)pool, running the clock sweep
  // over unpinned victims. Caller holds shard.mu.
  util::Status MakeRoom(Shard& shard, int size_class, uint32_t bytes);

  // Write a dirty frame back to the device; takes the frame latch shared
  // so it never captures a half-mutated page (or one whose redo record is
  // not yet appended). Called from MakeRoom with the shard mutex held —
  // safe, because eviction victims are unpinned and latched frames are
  // always pinned — and from FlushAll WITHOUT any shard mutex (a latch
  // holder may need a shard to fix further pages, e.g. a B-tree split).
  util::Status WriteBack(Frame* frame);

  BlockDevice* device_;
  const BufferPolicy policy_;
  WriteAheadLog* wal_ = nullptr;
  bool flush_on_close_ = true;

  std::vector<std::unique_ptr<Shard>> shards_;

  BufferStats stats_;
};

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_BUFFER_MANAGER_H_
