#ifndef PRIMA_STORAGE_BUFFER_MANAGER_H_
#define PRIMA_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/block_device.h"
#include "storage/page.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::storage {

/// Globally unique page address.
struct PageId {
  SegmentId segment = 0;
  uint32_t page = 0;

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.segment == b.segment && a.page == b.page;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.segment) << 32) |
                                 id.page);
  }
};

/// Replacement policy (paper §3.3). The paper discusses two ways to manage
/// different page sizes in one buffer: static partitioning ("not very
/// flexible when reference patterns change") and a modified LRU that handles
/// multiple sizes directly — the one PRIMA adopts. Both are implemented so
/// the claim is benchmarkable (experiment E10).
enum class BufferPolicy {
  kUnifiedLru,         ///< single LRU chain, byte-budget, size-aware eviction
  kStaticPartitioned,  ///< one classic LRU pool per page size, fixed budgets
};

struct BufferStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> writebacks{0};
  std::atomic<uint64_t> prefetched_pages{0};

  double HitRatio() const {
    const uint64_t h = hits, m = misses;
    return (h + m) == 0 ? 0.0 : static_cast<double>(h) / (h + m);
  }
  void Reset() {
    hits = misses = evictions = writebacks = prefetched_pages = 0;
  }
};

/// One buffered page. Callers access frames only through PageGuard
/// (storage_system.h); the latch serializes readers/writers of the bytes.
struct Frame {
  PageId id;
  uint32_t size = 0;
  std::unique_ptr<char[]> data;
  // Atomic so MarkDirty stays lock-free: guard holders set it while
  // latched, and taking the pool mutex there would deadlock against a
  // flusher that holds the mutex while waiting for the latch.
  std::atomic<bool> dirty{false};
  uint32_t pins = 0;
  std::shared_mutex latch;
  // Last checkpoint epoch in which this frame's changes were logged; a
  // mismatch with the WAL's current epoch makes the next logged change a
  // full-page image (torn-page protection). Guarded by the frame latch.
  uint64_t wal_epoch = 0;
  // Position in the owning LRU list (valid while resident).
  std::list<Frame*>::iterator lru_pos;
};

/// The database buffer: holds pages of all five sizes simultaneously.
/// Thread-safe; page content accesses are serialized by per-frame latches
/// taken by PageGuard.
class BufferManager {
 public:
  /// budget_bytes is the total data budget across all page sizes.
  BufferManager(BlockDevice* device, size_t budget_bytes, BufferPolicy policy);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pin the page, reading it from the device if absent. `page_size` must be
  /// the page size of the segment. If `format_new` is true the page is not
  /// read from the device; the frame starts zeroed (used for freshly
  /// allocated pages). The returned frame is pinned but not latched.
  util::Result<Frame*> Fix(PageId id, uint32_t page_size, bool format_new);

  /// Pin the page only if it is already resident; returns nullptr without
  /// touching the device otherwise. Used by parallel recovery apply: a
  /// resident frame (e.g. a segment header loaded at Open) must be updated
  /// in place or it would shadow a direct device write, while non-resident
  /// pages are replayed device-side without polluting the buffer. Does not
  /// count a hit or reorder the LRU chain — it is a probe, not an access.
  Frame* TryFix(PageId id);

  /// Release one pin.
  void Unfix(Frame* frame);

  /// Mark a pinned frame dirty (caller holds the exclusive latch).
  void MarkDirty(Frame* frame);

  /// Load all missing pages of the list with a single chained device read
  /// (the page-sequence fast path, experiment E9). No pins are taken.
  util::Status Prefetch(SegmentId segment, const std::vector<uint32_t>& pages,
                        uint32_t page_size);

  /// Write back every dirty page (sealing checksums). Pages stay resident.
  util::Status FlushAll();

  /// Drop all pages of a segment without write-back (segment drop).
  /// Fails if any of them is pinned.
  util::Status Discard(SegmentId segment);

  /// Attach (or detach, with nullptr) the write-ahead log. While attached,
  /// the WAL rule is enforced on every write-back: a dirty page whose
  /// page-LSN exceeds the durable LSN forces the log first, and PageGuard
  /// logs physiological redo for every page it mutates.
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() const { return wal_; }

  /// Disable the destructor's best-effort FlushAll (WAL-owned durability:
  /// unlogged destructor write-backs would diverge the device from the
  /// last checkpoint's redo basis).
  void set_flush_on_close(bool v) { flush_on_close_ = v; }

  BufferStats& stats() { return stats_; }
  size_t resident_bytes() const;

 private:
  // Size-class index for the partitioned policy.
  static int SizeClass(uint32_t page_size);

  // Ensure `bytes` fit in the (sub-)pool, evicting unpinned LRU victims.
  // Caller holds mu_.
  util::Status MakeRoom(int size_class, uint32_t bytes);

  // Write a dirty frame back to the device; takes the frame latch shared
  // so it never captures a half-mutated page (or one whose redo record is
  // not yet appended). Called from MakeRoom with mu_ held — safe, because
  // eviction victims are unpinned and latched frames are always pinned —
  // and from FlushAll WITHOUT mu_ (a latch holder may need mu_ to fix
  // further pages, e.g. a B-tree split).
  util::Status WriteBack(Frame* frame);

  BlockDevice* device_;
  const BufferPolicy policy_;
  WriteAheadLog* wal_ = nullptr;
  bool flush_on_close_ = true;

  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Frame>, PageIdHash> frames_;

  // Unified policy uses chain 0 / budget 0 only; partitioned uses one chain
  // per size class. Front = least recently used.
  std::list<Frame*> lru_[5];
  size_t budget_[5] = {0, 0, 0, 0, 0};
  size_t used_[5] = {0, 0, 0, 0, 0};

  BufferStats stats_;
};

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_BUFFER_MANAGER_H_
