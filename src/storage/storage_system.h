#ifndef PRIMA_STORAGE_STORAGE_SYSTEM_H_
#define PRIMA_STORAGE_STORAGE_SYSTEM_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/block_device.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::storage {

/// How a PageGuard latches the frame's bytes.
enum class LatchMode { kShared, kExclusive };

/// RAII handle for a pinned, latched page. Obtained from
/// StorageSystem::FixPage / NewPage; unlatches and unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* buffer, Frame* frame, LatchMode mode);
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  uint32_t page_no() const { return frame_->id.page; }
  uint32_t page_size() const { return frame_->size; }

  /// Read access to the page bytes.
  const char* data() const { return frame_->data.get(); }

  /// Write access; requires kExclusive and marks the page dirty.
  char* mutable_data();

  /// Unlatch + unpin early.
  void Release();

 private:
  BufferManager* buffer_ = nullptr;
  Frame* frame_ = nullptr;
  LatchMode mode_ = LatchMode::kShared;
};

struct StorageOptions {
  /// Total buffer budget in bytes across all page sizes.
  size_t buffer_bytes = 8u << 20;
  BufferPolicy buffer_policy = BufferPolicy::kUnifiedLru;
};

/// The storage system (paper §3.3, bottom layer of Fig. 3.1): maps segments
/// divided into pages of one of five sizes — plus page sequences as
/// containers of arbitrary length — onto the blocks of the file manager.
class StorageSystem {
 public:
  StorageSystem(std::unique_ptr<BlockDevice> device, StorageOptions options);
  ~StorageSystem();

  /// Load segment metadata for every file already present on the device
  /// (database reopen).
  util::Status Open();

  // --- segments ------------------------------------------------------------

  util::Status CreateSegment(SegmentId id, PageSize size);
  util::Status DropSegment(SegmentId id);
  bool SegmentExists(SegmentId id) const;
  util::Result<PageSize> SegmentPageSize(SegmentId id) const;
  std::vector<SegmentId> ListSegments() const;
  /// Lowest unused segment id (for catalog-driven allocation).
  SegmentId NextFreeSegmentId() const;

  // --- pages ---------------------------------------------------------------

  /// Pin + latch an existing page.
  util::Result<PageGuard> FixPage(SegmentId seg, uint32_t page_no,
                                  LatchMode mode);
  /// Allocate a fresh page (free list first, then segment growth), formatted
  /// to `type`, returned exclusively latched and dirty.
  util::Result<PageGuard> NewPage(SegmentId seg, PageType type);
  /// Return a page to the segment's free list.
  util::Status FreePage(SegmentId seg, uint32_t page_no);
  /// Number of pages ever allocated (including freed ones and the header).
  util::Result<uint32_t> PageCount(SegmentId seg) const;

  // --- page sequences (paper §3.3, Fig. 3.2c) -------------------------------

  /// Store `payload` as a page sequence; returns the header page number,
  /// which identifies the sequence from then on.
  util::Result<uint32_t> CreateSequence(SegmentId seg, util::Slice payload);
  /// Read the full payload. On a cold buffer this issues one chained device
  /// read for all component pages (experiment E9).
  util::Result<std::string> ReadSequence(SegmentId seg, uint32_t header_page);
  /// Replace the payload, keeping the header page number stable.
  util::Status RewriteSequence(SegmentId seg, uint32_t header_page,
                               util::Slice payload);
  util::Status DropSequence(SegmentId seg, uint32_t header_page);

  // --- maintenance ----------------------------------------------------------

  /// Write back all dirty pages and segment metadata; sync the device.
  util::Status Flush();

  BufferManager& buffer() { return *buffer_; }
  BlockDevice& device() { return *device_; }

 private:
  struct SegmentMeta {
    PageSize page_size = PageSize::k8K;
    uint32_t page_count = 1;  // page 0 is the segment header
    uint32_t free_head = 0;   // 0 = empty free list
    bool dirty = false;
  };

  util::Status LoadSegmentMeta(SegmentId id);
  util::Status PersistSegmentMeta(SegmentId id, SegmentMeta* meta);
  util::Result<uint32_t> AllocatePageLocked(SegmentId seg, SegmentMeta* meta);

  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<BufferManager> buffer_;

  mutable std::mutex mu_;  // guards segments_
  std::map<SegmentId, SegmentMeta> segments_;
};

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_STORAGE_SYSTEM_H_
