#ifndef PRIMA_STORAGE_STORAGE_SYSTEM_H_
#define PRIMA_STORAGE_STORAGE_SYSTEM_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "storage/block_device.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prima::storage {

/// How a PageGuard latches the frame's bytes.
enum class LatchMode { kShared, kExclusive };

/// RAII handle for a pinned, latched page. Obtained from
/// StorageSystem::FixPage / NewPage; unlatches and unpins on destruction.
///
/// When a WAL is attached to the buffer, an exclusive guard is also the
/// unit of physiological logging: the first mutable_data() call snapshots
/// the page, and Release() appends a redo record for the changed bytes and
/// stamps the record's LSN into the page header — all before the latch
/// drops, so the page can never reach the device ahead of its log record.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* buffer, Frame* frame, LatchMode mode);
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return frame_ != nullptr; }
  uint32_t page_no() const { return frame_->id.page; }
  uint32_t page_size() const { return frame_->size; }

  /// Read access to the page bytes.
  const char* data() const { return frame_->data.get(); }

  /// Write access; requires kExclusive and marks the page dirty.
  char* mutable_data();

  /// Mark the page as freshly formatted: Release() logs the complete image
  /// instead of a delta, because the on-device bytes (a recycled free-list
  /// page, say) may not match the in-memory before image.
  void MarkFreshlyFormatted() { fresh_format_ = true; }

  /// Unlatch + unpin early.
  void Release();

 private:
  BufferManager* buffer_ = nullptr;
  Frame* frame_ = nullptr;
  LatchMode mode_ = LatchMode::kShared;
  std::unique_ptr<char[]> before_;  ///< pre-image for physiological logging
  bool fresh_format_ = false;
};

struct StorageOptions {
  /// Total buffer budget in bytes across all page sizes.
  size_t buffer_bytes = 8u << 20;
  BufferPolicy buffer_policy = BufferPolicy::kUnifiedLru;
  /// Buffer pool partitions (page-id hashed, each with its own mutex and
  /// clock ring). 1 = the single-partition pool, behaviorally identical to
  /// the pre-sharding manager; Prima resolves its hardware-scaled default
  /// into this before construction.
  size_t buffer_shards = 1;
  /// Async read-ahead window: the largest number of pages one ReadAhead
  /// hint may stage. 0 disables the prefetcher entirely (no thread is
  /// started and ReadAhead becomes a no-op).
  size_t readahead_pages = 0;
};

/// The storage system (paper §3.3, bottom layer of Fig. 3.1): maps segments
/// divided into pages of one of five sizes — plus page sequences as
/// containers of arbitrary length — onto the blocks of the file manager.
class StorageSystem {
 public:
  StorageSystem(std::unique_ptr<BlockDevice> device, StorageOptions options);
  ~StorageSystem();

  /// Load segment metadata for every file already present on the device
  /// (database reopen).
  util::Status Open();

  // --- segments ------------------------------------------------------------

  util::Status CreateSegment(SegmentId id, PageSize size);
  util::Status DropSegment(SegmentId id);
  bool SegmentExists(SegmentId id) const;
  util::Result<PageSize> SegmentPageSize(SegmentId id) const;
  std::vector<SegmentId> ListSegments() const;
  /// Lowest unused segment id (for catalog-driven allocation).
  SegmentId NextFreeSegmentId() const;

  // --- pages ---------------------------------------------------------------

  /// Pin + latch an existing page.
  util::Result<PageGuard> FixPage(SegmentId seg, uint32_t page_no,
                                  LatchMode mode);
  /// Allocate a fresh page (free list first, then segment growth), formatted
  /// to `type`, returned exclusively latched and dirty.
  util::Result<PageGuard> NewPage(SegmentId seg, PageType type);
  /// Return a page to the segment's free list.
  util::Status FreePage(SegmentId seg, uint32_t page_no);
  /// Number of pages ever allocated (including freed ones and the header).
  util::Result<uint32_t> PageCount(SegmentId seg) const;

  // --- page sequences (paper §3.3, Fig. 3.2c) -------------------------------

  /// Store `payload` as a page sequence; returns the header page number,
  /// which identifies the sequence from then on.
  util::Result<uint32_t> CreateSequence(SegmentId seg, util::Slice payload);
  /// Read the full payload. On a cold buffer this issues one chained device
  /// read for all component pages (experiment E9).
  util::Result<std::string> ReadSequence(SegmentId seg, uint32_t header_page);
  /// Replace the payload, keeping the header page number stable.
  util::Status RewriteSequence(SegmentId seg, uint32_t header_page,
                               util::Slice payload);
  util::Status DropSequence(SegmentId seg, uint32_t header_page);

  // --- async read-ahead ------------------------------------------------------

  /// Submit a prefetch HINT: stage the listed pages into the buffer from a
  /// background prefetcher thread so an upcoming sequential (or grid-
  /// bucket) read finds them resident. Purely advisory — the hint is
  /// clamped to the configured window, dropped silently when the in-flight
  /// depth cap is reached or the prefetcher is disabled, and any staging
  /// error is swallowed (the foreground Fix will read and validate the
  /// page itself). Never blocks on device I/O.
  void ReadAhead(SegmentId seg, std::vector<uint32_t> pages);

  /// The configured per-hint window (0 = read-ahead disabled). Scans use
  /// this to size the hints they emit.
  size_t readahead_window() const { return readahead_pages_; }

  // --- maintenance ----------------------------------------------------------

  /// Write back all dirty pages and segment metadata; sync the device.
  /// With a WAL attached this participates in checkpointing: every
  /// write-back forces the log first (WAL rule), so after Flush() returns,
  /// log and data are consistent up to the flush point.
  util::Status Flush();

  /// Attach (or detach) the write-ahead log. Segment bookkeeping changes
  /// and every page mutation are logged from then on.
  void SetWal(WriteAheadLog* wal);
  WriteAheadLog* wal() const { return wal_; }

  /// Disable the destructor's best-effort Flush (and the buffer's): when a
  /// WAL owns durability the owner checkpoints explicitly, and any later
  /// unlogged destructor writes would invalidate that checkpoint's redo
  /// basis on the device.
  void set_flush_on_close(bool v);

  // --- restart recovery (RecoveryManager only) -------------------------------

  /// One physiological redo record of a page's chain: the record LSN and
  /// the changed byte ranges (offset, bytes). The views borrow the caller's
  /// record storage and must outlive the apply call.
  struct RedoEntry {
    uint64_t lsn = 0;
    std::vector<std::pair<uint32_t, util::Slice>> ranges;
  };

  struct RedoChainResult {
    uint64_t applied = 0;  ///< records whose bytes were installed
    uint64_t skipped = 0;  ///< page-LSN already current (redo idempotence)
    /// The device image is torn (bad page CRC) and no full-image record
    /// arrived in the chain to rebuild it from — the page is unrecoverable
    /// by log replay and the caller must fail loudly (media recovery).
    bool torn = false;
  };

  /// Replay one page's complete redo chain (entries in LSN order): ensure
  /// the segment exists and is large enough, then apply every entry whose
  /// LSN is newer than the page (repeating history, ARIES-idempotent).
  ///
  /// Thread-safe against concurrent chains for OTHER pages — this is the
  /// unit of work of the parallel redo phase; the partition by page id
  /// guarantees no two chains share a page. A page already resident in the
  /// buffer (segment headers loaded at Open) is updated in place under its
  /// frame latch and left dirty for the post-recovery checkpoint;
  /// non-resident pages are replayed in worker-local memory and written
  /// back (sealed) directly — their redo records are already durable in
  /// the log, so the WAL rule is vacuously satisfied.
  ///
  /// A page torn on the device is rebuilt only from a full-image record
  /// (the epoch rule logs one as the page's first post-checkpoint change);
  /// deltas ahead of it are held back, and a chain that ends still torn
  /// reports so via RedoChainResult::torn.
  util::Result<RedoChainResult> RecoverApplyPageRedoChain(
      SegmentId seg, uint32_t page, uint32_t page_size,
      const std::vector<RedoEntry>& entries);

  /// Reinstall segment bookkeeping from a kSegMeta record (repeating the
  /// history of allocations and frees that never reached the device).
  util::Status RecoverSegmentMeta(SegmentId seg, PageSize size,
                                  uint32_t page_count, uint32_t free_head);

  /// Segment files whose header page read back all-zero at Open(): files
  /// born just before a crash whose formatting never reached the device.
  /// Open() skips them instead of failing — they are unaddressable until
  /// WAL replay repeats their creation (RecoverSegmentMeta / page redo,
  /// which removes them from this list as it reinstates them).
  std::vector<SegmentId> CrashTornSegments() const;

  /// Delete the crash-torn segment files replay never reinstated. A
  /// segment absent from the durable log was never referenced by any
  /// committed work (the WAL rule forces the creation record out before
  /// any dependent write), so the file is crash residue, not data.
  /// Returns how many files were removed.
  util::Result<size_t> DropUnrecoveredSegments();

  BufferManager& buffer() { return *buffer_; }
  BlockDevice& device() { return *device_; }

 private:
  struct SegmentMeta {
    PageSize page_size = PageSize::k8K;
    uint32_t page_count = 1;  // page 0 is the segment header
    uint32_t free_head = 0;   // 0 = empty free list
    bool dirty = false;
  };

  // False = the header page is all-zero (crash-torn newborn): the segment
  // was skipped and recorded in crash_torn_ for replay to reinstate.
  util::Result<bool> LoadSegmentMeta(SegmentId id);
  util::Status PersistSegmentMeta(SegmentId id, SegmentMeta* meta);
  util::Result<uint32_t> AllocatePageLocked(SegmentId seg, SegmentMeta* meta);
  // Log a kSegMeta record for the segment's current bookkeeping.
  void LogSegMeta(SegmentId seg, const SegmentMeta& meta);

  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<BufferManager> buffer_;
  WriteAheadLog* wal_ = nullptr;
  bool flush_on_close_ = true;

  mutable std::mutex mu_;  // guards segments_ and crash_torn_
  std::map<SegmentId, SegmentMeta> segments_;
  // Zero-headered files Open() skipped, pending replay (see
  // CrashTornSegments).
  std::set<SegmentId> crash_torn_;

  // Read-ahead: a dedicated prefetcher pool resolves hints into resident
  // frames; the atomic depth gauge caps how many batches may be queued or
  // running at once (hints beyond it are dropped, not queued — back-
  // pressure must never reach the scan that volunteered the hint).
  size_t readahead_pages_ = 0;
  std::atomic<int> readahead_inflight_{0};
  // Declared last so it is destroyed FIRST: in-flight prefetch tasks touch
  // buffer_ and device_, which must still be alive when the pool joins.
  std::unique_ptr<util::ThreadPool> prefetcher_;
};

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_STORAGE_SYSTEM_H_
