#include "storage/storage_system.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace prima::storage {

using util::Result;
using util::Slice;
using util::Status;

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

PageGuard::PageGuard(BufferManager* buffer, Frame* frame, LatchMode mode)
    : buffer_(buffer), frame_(frame), mode_(mode) {
  if (mode_ == LatchMode::kShared) {
    frame_->latch.lock_shared();
  } else {
    frame_->latch.lock();
  }
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    buffer_ = other.buffer_;
    frame_ = other.frame_;
    mode_ = other.mode_;
    before_ = std::move(other.before_);
    fresh_format_ = other.fresh_format_;
    other.buffer_ = nullptr;
    other.frame_ = nullptr;
    other.fresh_format_ = false;
  }
  return *this;
}

char* PageGuard::mutable_data() {
  assert(mode_ == LatchMode::kExclusive);
  if (before_ == nullptr && buffer_->wal() != nullptr) {
    // Physiological logging: remember the pre-image so Release() can append
    // a redo record for exactly the bytes this guard changed.
    before_ = std::make_unique<char[]>(frame_->size);
    std::memcpy(before_.get(), frame_->data.get(), frame_->size);
  }
  buffer_->MarkDirty(frame_);
  return frame_->data.get();
}

void PageGuard::Release() {
  if (frame_ == nullptr) return;
  WriteAheadLog* wal = buffer_->wal();
  if (wal != nullptr && (before_ != nullptr || fresh_format_)) {
    // Still under the exclusive latch: append the redo record and stamp its
    // LSN before anyone (including the buffer's write-back path) can see
    // the new bytes. The first logged change of an epoch ships the full
    // image — restart redo starts at the checkpoint, and a page torn on
    // the device is only reconstructible from complete contents.
    const uint64_t epoch = wal->epoch();
    const bool full = fresh_format_ || frame_->wal_epoch != epoch;
    const uint64_t lsn =
        full ? wal->LogFullPage(frame_->id.segment, frame_->id.page,
                                frame_->size, frame_->data.get())
             : wal->LogPageDelta(frame_->id.segment, frame_->id.page,
                                 frame_->size, before_.get(),
                                 frame_->data.get());
    if (lsn != 0) {
      PageHeader::set_lsn(frame_->data.get(), lsn);
      frame_->wal_epoch = epoch;
    }
  }
  before_.reset();
  fresh_format_ = false;
  if (mode_ == LatchMode::kShared) {
    frame_->latch.unlock_shared();
  } else {
    frame_->latch.unlock();
  }
  buffer_->Unfix(frame_);
  frame_ = nullptr;
  buffer_ = nullptr;
}

// ---------------------------------------------------------------------------
// StorageSystem
// ---------------------------------------------------------------------------

namespace {
constexpr uint32_t kSegmentMagic = 0x5345474Du;  // "SEGM"

// Segment header page payload layout (after the common page header):
//   [0..4)  magic
//   [4]     page size code
//   [5..9)  page_count
//   [9..13) free list head
constexpr uint32_t kSegMetaBytes = 13;
}  // namespace

StorageSystem::StorageSystem(std::unique_ptr<BlockDevice> device,
                             StorageOptions options)
    : device_(std::move(device)),
      buffer_(std::make_unique<BufferManager>(
          device_.get(), options.buffer_bytes, options.buffer_policy,
          options.buffer_shards)),
      readahead_pages_(options.readahead_pages) {
  if (readahead_pages_ > 0) {
    // One worker is enough: a hint resolves into a single chained device
    // read, and the depth cap bounds the queue it can fall behind by.
    prefetcher_ = std::make_unique<util::ThreadPool>(1);
  }
}

StorageSystem::~StorageSystem() {
  if (flush_on_close_) (void)Flush();
}

void StorageSystem::set_flush_on_close(bool v) {
  flush_on_close_ = v;
  buffer_->set_flush_on_close(v);
}

Status StorageSystem::Open() {
  for (SegmentId id : device_->ListFiles()) {
    if (IsReservedFileId(id)) continue;  // WAL / archive / backup files
    PRIMA_ASSIGN_OR_RETURN(const bool loaded, LoadSegmentMeta(id));
    if (!loaded) {
      std::lock_guard<std::mutex> lock(mu_);
      crash_torn_.insert(id);
    }
  }
  return Status::Ok();
}

void StorageSystem::SetWal(WriteAheadLog* wal) {
  // Quiesce the prefetcher first: an in-flight staging batch may evict a
  // dirty victim, and its WAL-rule force must not race this pointer swap.
  if (prefetcher_ != nullptr) prefetcher_->Wait();
  wal_ = wal;
  buffer_->SetWal(wal);
}

void StorageSystem::ReadAhead(SegmentId seg, std::vector<uint32_t> pages) {
  if (prefetcher_ == nullptr || pages.empty()) return;
  uint32_t page_size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(seg);
    if (it == segments_.end()) return;  // dropped since the hint was formed
    page_size = PageSizeBytes(it->second.page_size);
  }
  if (pages.size() > readahead_pages_) pages.resize(readahead_pages_);
  // Depth cap: under pressure the right move is to drop the hint, not to
  // queue it — a backlog of stale hints would prefetch pages the scan has
  // already read past.
  static constexpr int kMaxInflightBatches = 4;
  int inflight = readahead_inflight_.load(std::memory_order_relaxed);
  do {
    if (inflight >= kMaxInflightBatches) {
      buffer_->stats().readahead_dropped++;
      return;
    }
  } while (!readahead_inflight_.compare_exchange_weak(inflight, inflight + 1));
  buffer_->stats().readahead_batches++;
  prefetcher_->Submit([this, seg, pages = std::move(pages), page_size] {
    // Best effort by design: a page that vanished (segment drop), a full
    // shard, or a checksum problem is the foreground reader's business —
    // the hint just stops staging.
    (void)buffer_->Prefetch(seg, pages, page_size);
    readahead_inflight_.fetch_sub(1, std::memory_order_relaxed);
  });
}

void StorageSystem::LogSegMeta(SegmentId seg, const SegmentMeta& meta) {
  if (wal_ == nullptr) return;
  wal_->LogSegmentMeta(seg, static_cast<uint8_t>(meta.page_size),
                       meta.page_count, meta.free_head);
}

Result<bool> StorageSystem::LoadSegmentMeta(SegmentId id) {
  PRIMA_ASSIGN_OR_RETURN(const uint32_t bs, device_->BlockSizeOf(id));
  PRIMA_ASSIGN_OR_RETURN(Frame* const frame,
                         buffer_->Fix(PageId{id, 0}, bs, false));
  const char* payload = frame->data.get() + PageHeader::kSize;
  SegmentMeta meta;
  Status st;
  if (util::DecodeFixed32(payload) != kSegmentMagic) {
    if (PageIsAllZero(frame->data.get(), bs)) {
      // The file was created but its formatting never reached the device —
      // a crash landed between Create and the header write-back. Skip it
      // (the caller records it for replay) and evict the zeroed frame so
      // redo goes through the torn-aware non-resident path.
      buffer_->Unfix(frame);
      PRIMA_RETURN_IF_ERROR(buffer_->Discard(id));
      return false;
    }
    st = Status::Corruption("segment " + std::to_string(id) +
                            ": bad segment header magic");
  } else {
    meta.page_size = static_cast<PageSize>(payload[4]);
    meta.page_count = util::DecodeFixed32(payload + 5);
    meta.free_head = util::DecodeFixed32(payload + 9);
    meta.dirty = false;
  }
  buffer_->Unfix(frame);
  if (!st.ok()) return st;
  std::lock_guard<std::mutex> lock(mu_);
  segments_[id] = meta;
  return true;
}

Status StorageSystem::PersistSegmentMeta(SegmentId id, SegmentMeta* meta) {
  const uint32_t bs = PageSizeBytes(meta->page_size);
  PRIMA_ASSIGN_OR_RETURN(Frame* const frame,
                         buffer_->Fix(PageId{id, 0}, bs, false));
  {
    // Routed through PageGuard so the header write is WAL-logged like any
    // other page mutation.
    PageGuard guard(buffer_.get(), frame, LatchMode::kExclusive);
    char* page = guard.mutable_data();
    PageHeader::set_page_no(page, 0);
    PageHeader::set_type(page, PageType::kSegmentHeader);
    char* payload = page + PageHeader::kSize;
    util::EncodeFixed32(payload, kSegmentMagic);
    payload[4] = static_cast<char>(meta->page_size);
    util::EncodeFixed32(payload + 5, meta->page_count);
    util::EncodeFixed32(payload + 9, meta->free_head);
  }  // guard unlatches + unpins
  meta->dirty = false;
  return Status::Ok();
}

Status StorageSystem::CreateSegment(SegmentId id, PageSize size) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (segments_.count(id) != 0) {
      return Status::AlreadyExists("segment " + std::to_string(id));
    }
  }
  PRIMA_RETURN_IF_ERROR(device_->Create(id, PageSizeBytes(size)));
  SegmentMeta meta;
  meta.page_size = size;
  meta.page_count = 1;
  meta.free_head = 0;
  // Materialize page 0 so reopen finds valid metadata even without Flush.
  PRIMA_ASSIGN_OR_RETURN(Frame* const frame,
                         buffer_->Fix(PageId{id, 0}, PageSizeBytes(size), true));
  buffer_->Unfix(frame);
  PRIMA_RETURN_IF_ERROR(PersistSegmentMeta(id, &meta));
  LogSegMeta(id, meta);
  std::lock_guard<std::mutex> lock(mu_);
  segments_[id] = meta;
  return Status::Ok();
}

Status StorageSystem::DropSegment(SegmentId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (segments_.erase(id) == 0) {
      return Status::NotFound("segment " + std::to_string(id));
    }
  }
  // Drain the prefetcher between unmapping and discarding: a hint for this
  // segment submitted before the unmap could otherwise re-stage frames
  // after the Discard (hints submitted after it find the segment gone and
  // no-op).
  if (prefetcher_ != nullptr) prefetcher_->Wait();
  PRIMA_RETURN_IF_ERROR(buffer_->Discard(id));
  return device_->Remove(id);
}

bool StorageSystem::SegmentExists(SegmentId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.count(id) != 0;
}

Result<PageSize> StorageSystem::SegmentPageSize(SegmentId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(id);
  if (it == segments_.end()) {
    return Status::NotFound("segment " + std::to_string(id));
  }
  return it->second.page_size;
}

std::vector<SegmentId> StorageSystem::ListSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentId> out;
  out.reserve(segments_.size());
  for (const auto& [id, meta] : segments_) out.push_back(id);
  return out;
}

SegmentId StorageSystem::NextFreeSegmentId() const {
  std::lock_guard<std::mutex> lock(mu_);
  SegmentId id = 1;
  for (const auto& [existing, meta] : segments_) {
    if (existing >= id) id = existing + 1;
  }
  return id;
}

Result<PageGuard> StorageSystem::FixPage(SegmentId seg, uint32_t page_no,
                                         LatchMode mode) {
  uint32_t bs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(seg);
    if (it == segments_.end()) {
      return Status::NotFound("segment " + std::to_string(seg));
    }
    if (page_no >= it->second.page_count) {
      return Status::InvalidArgument("page " + std::to_string(page_no) +
                                     " beyond segment end");
    }
    bs = PageSizeBytes(it->second.page_size);
  }
  PRIMA_ASSIGN_OR_RETURN(Frame* const frame,
                         buffer_->Fix(PageId{seg, page_no}, bs, false));
  return PageGuard(buffer_.get(), frame, mode);
}

Result<uint32_t> StorageSystem::AllocatePageLocked(SegmentId seg,
                                                   SegmentMeta* meta) {
  meta->dirty = true;
  if (meta->free_head != 0) {
    const uint32_t page_no = meta->free_head;
    // The free page stores the next free page number in its header u64.
    PRIMA_ASSIGN_OR_RETURN(
        Frame* const frame,
        buffer_->Fix(PageId{seg, page_no}, PageSizeBytes(meta->page_size),
                     false));
    meta->free_head = static_cast<uint32_t>(PageHeader::u64(frame->data.get()));
    buffer_->Unfix(frame);
    return page_no;
  }
  return meta->page_count++;
}

Result<PageGuard> StorageSystem::NewPage(SegmentId seg, PageType type) {
  uint32_t page_no;
  uint32_t bs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = segments_.find(seg);
    if (it == segments_.end()) {
      return Status::NotFound("segment " + std::to_string(seg));
    }
    bs = PageSizeBytes(it->second.page_size);
    PRIMA_ASSIGN_OR_RETURN(page_no, AllocatePageLocked(seg, &it->second));
    LogSegMeta(seg, it->second);
  }
  PRIMA_ASSIGN_OR_RETURN(Frame* const frame,
                         buffer_->Fix(PageId{seg, page_no}, bs, true));
  PageGuard guard(buffer_.get(), frame, LatchMode::kExclusive);
  // A recycled free-list page may still hold stale bytes in its frame (and
  // unknown bytes on the device) — format from scratch and log the full
  // image rather than a delta.
  guard.MarkFreshlyFormatted();
  char* page = guard.mutable_data();
  std::memset(page, 0, bs);
  PageHeader::Format(page, bs, page_no, type);
  return guard;
}

Status StorageSystem::FreePage(SegmentId seg, uint32_t page_no) {
  if (page_no == 0) {
    return Status::InvalidArgument("cannot free the segment header page");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(seg);
  if (it == segments_.end()) {
    return Status::NotFound("segment " + std::to_string(seg));
  }
  SegmentMeta& meta = it->second;
  const uint32_t bs = PageSizeBytes(meta.page_size);
  PRIMA_ASSIGN_OR_RETURN(Frame* const frame,
                         buffer_->Fix(PageId{seg, page_no}, bs, false));
  {
    PageGuard guard(buffer_.get(), frame, LatchMode::kExclusive);
    guard.MarkFreshlyFormatted();
    char* page = guard.mutable_data();
    PageHeader::Format(page, bs, page_no, PageType::kFree);
    PageHeader::set_u64(page, meta.free_head);
  }
  meta.free_head = page_no;
  meta.dirty = true;
  LogSegMeta(seg, meta);
  return Status::Ok();
}

Result<uint32_t> StorageSystem::PageCount(SegmentId seg) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(seg);
  if (it == segments_.end()) {
    return Status::NotFound("segment " + std::to_string(seg));
  }
  return it->second.page_count;
}

// ---------------------------------------------------------------------------
// Page sequences
// ---------------------------------------------------------------------------

namespace {
// Sequence header payload: u32 total_len, u32 page_count, u32 pages[],
// or (page_count == 0) the payload inline.
constexpr uint32_t kSeqHeaderFixed = 8;

uint32_t MaxComponents(uint32_t page_size) {
  return (PagePayload(page_size) - kSeqHeaderFixed) / 4;
}
}  // namespace

Result<uint32_t> StorageSystem::CreateSequence(SegmentId seg, Slice payload) {
  PRIMA_ASSIGN_OR_RETURN(const PageSize ps, SegmentPageSize(seg));
  const uint32_t bs = PageSizeBytes(ps);
  const uint32_t comp_capacity = PagePayload(bs);
  const uint32_t inline_capacity = PagePayload(bs) - kSeqHeaderFixed;

  PRIMA_ASSIGN_OR_RETURN(PageGuard header, NewPage(seg, PageType::kSeqHeader));
  char* hp = header.mutable_data() + PageHeader::kSize;
  util::EncodeFixed32(hp, static_cast<uint32_t>(payload.size()));

  if (payload.size() <= inline_capacity) {
    util::EncodeFixed32(hp + 4, 0);
    std::memcpy(hp + kSeqHeaderFixed, payload.data(), payload.size());
    return header.page_no();
  }

  const uint32_t n_pages =
      static_cast<uint32_t>((payload.size() + comp_capacity - 1) / comp_capacity);
  if (n_pages > MaxComponents(bs)) {
    return Status::NoSpace("page sequence too long for header page");
  }
  util::EncodeFixed32(hp + 4, n_pages);
  size_t off = 0;
  for (uint32_t i = 0; i < n_pages; ++i) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard comp, NewPage(seg, PageType::kSeqComponent));
    const size_t chunk = std::min<size_t>(comp_capacity, payload.size() - off);
    std::memcpy(comp.mutable_data() + PageHeader::kSize, payload.data() + off,
                chunk);
    util::EncodeFixed32(hp + kSeqHeaderFixed + 4 * i, comp.page_no());
    off += chunk;
  }
  return header.page_no();
}

Result<std::string> StorageSystem::ReadSequence(SegmentId seg,
                                                uint32_t header_page) {
  PRIMA_ASSIGN_OR_RETURN(const PageSize ps, SegmentPageSize(seg));
  const uint32_t bs = PageSizeBytes(ps);
  const uint32_t comp_capacity = PagePayload(bs);

  PRIMA_ASSIGN_OR_RETURN(PageGuard header,
                         FixPage(seg, header_page, LatchMode::kShared));
  if (PageHeader::type(header.data()) != PageType::kSeqHeader) {
    return Status::Corruption("page " + std::to_string(header_page) +
                              " is not a sequence header");
  }
  const char* hp = header.data() + PageHeader::kSize;
  const uint32_t total_len = util::DecodeFixed32(hp);
  const uint32_t n_pages = util::DecodeFixed32(hp + 4);

  std::string out;
  out.reserve(total_len);
  if (n_pages == 0) {
    out.assign(hp + kSeqHeaderFixed, total_len);
    return out;
  }

  std::vector<uint32_t> pages(n_pages);
  for (uint32_t i = 0; i < n_pages; ++i) {
    pages[i] = util::DecodeFixed32(hp + kSeqHeaderFixed + 4 * i);
  }
  // The paper's "optimal transfer of the whole page sequence": all component
  // pages missing from the buffer arrive with one chained I/O.
  PRIMA_RETURN_IF_ERROR(buffer_->Prefetch(seg, pages, bs));

  size_t remaining = total_len;
  for (uint32_t p : pages) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard comp, FixPage(seg, p, LatchMode::kShared));
    const size_t chunk = std::min<size_t>(comp_capacity, remaining);
    out.append(comp.data() + PageHeader::kSize, chunk);
    remaining -= chunk;
  }
  return out;
}

Status StorageSystem::RewriteSequence(SegmentId seg, uint32_t header_page,
                                      Slice payload) {
  PRIMA_ASSIGN_OR_RETURN(const PageSize ps, SegmentPageSize(seg));
  const uint32_t bs = PageSizeBytes(ps);
  const uint32_t comp_capacity = PagePayload(bs);
  const uint32_t inline_capacity = PagePayload(bs) - kSeqHeaderFixed;

  PRIMA_ASSIGN_OR_RETURN(PageGuard header,
                         FixPage(seg, header_page, LatchMode::kExclusive));
  if (PageHeader::type(header.data()) != PageType::kSeqHeader) {
    return Status::Corruption("page " + std::to_string(header_page) +
                              " is not a sequence header");
  }
  char* hp = header.mutable_data() + PageHeader::kSize;
  const uint32_t old_n = util::DecodeFixed32(hp + 4);
  std::vector<uint32_t> old_pages(old_n);
  for (uint32_t i = 0; i < old_n; ++i) {
    old_pages[i] = util::DecodeFixed32(hp + kSeqHeaderFixed + 4 * i);
  }

  util::EncodeFixed32(hp, static_cast<uint32_t>(payload.size()));
  if (payload.size() <= inline_capacity) {
    util::EncodeFixed32(hp + 4, 0);
    std::memcpy(hp + kSeqHeaderFixed, payload.data(), payload.size());
  } else {
    const uint32_t n_pages = static_cast<uint32_t>(
        (payload.size() + comp_capacity - 1) / comp_capacity);
    if (n_pages > MaxComponents(bs)) {
      return Status::NoSpace("page sequence too long for header page");
    }
    util::EncodeFixed32(hp + 4, n_pages);
    size_t off = 0;
    for (uint32_t i = 0; i < n_pages; ++i) {
      PRIMA_ASSIGN_OR_RETURN(PageGuard comp,
                             NewPage(seg, PageType::kSeqComponent));
      const size_t chunk = std::min<size_t>(comp_capacity, payload.size() - off);
      std::memcpy(comp.mutable_data() + PageHeader::kSize, payload.data() + off,
                  chunk);
      util::EncodeFixed32(hp + kSeqHeaderFixed + 4 * i, comp.page_no());
      off += chunk;
    }
  }
  header.Release();
  for (uint32_t p : old_pages) {
    PRIMA_RETURN_IF_ERROR(FreePage(seg, p));
  }
  return Status::Ok();
}

Status StorageSystem::DropSequence(SegmentId seg, uint32_t header_page) {
  std::vector<uint32_t> pages;
  {
    PRIMA_ASSIGN_OR_RETURN(PageGuard header,
                           FixPage(seg, header_page, LatchMode::kShared));
    if (PageHeader::type(header.data()) != PageType::kSeqHeader) {
      return Status::Corruption("page " + std::to_string(header_page) +
                                " is not a sequence header");
    }
    const char* hp = header.data() + PageHeader::kSize;
    const uint32_t n_pages = util::DecodeFixed32(hp + 4);
    for (uint32_t i = 0; i < n_pages; ++i) {
      pages.push_back(util::DecodeFixed32(hp + kSeqHeaderFixed + 4 * i));
    }
  }
  for (uint32_t p : pages) {
    PRIMA_RETURN_IF_ERROR(FreePage(seg, p));
  }
  return FreePage(seg, header_page);
}

Status StorageSystem::Flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, meta] : segments_) {
      if (meta.dirty) {
        PRIMA_RETURN_IF_ERROR(PersistSegmentMeta(id, &meta));
      }
    }
  }
  PRIMA_RETURN_IF_ERROR(buffer_->FlushAll());
  PRIMA_RETURN_IF_ERROR(device_->Sync());
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Restart recovery
// ---------------------------------------------------------------------------

namespace {

// A record carrying the complete page contents (LogFullPage's shape: the
// header minus checksum and page-LSN, then everything past the header).
// Only such a record can rebuild a page whose device image is torn — a
// delta onto a zeroed base would silently destroy the rest of the page.
bool IsFullImage(const StorageSystem::RedoEntry& e, uint32_t page_size) {
  return e.ranges.size() == 2 && e.ranges[0].first == 4 &&
         e.ranges[0].second.size() == PageHeader::kSize - 12 &&
         e.ranges[1].first == PageHeader::kSize &&
         e.ranges[1].second.size() == page_size - PageHeader::kSize;
}

}  // namespace

Result<StorageSystem::RedoChainResult> StorageSystem::RecoverApplyPageRedoChain(
    SegmentId seg, uint32_t page, uint32_t page_size,
    const std::vector<RedoEntry>& entries) {
  // The segment may postdate the last persisted metadata — recreate the
  // device file and grow the bookkeeping so the page is addressable. Under
  // mu_ whole: concurrent chains for different pages of the same fresh
  // segment would otherwise race the exists-check against the create.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!device_->Exists(seg)) {
      PRIMA_RETURN_IF_ERROR(device_->Create(seg, page_size));
    }
    auto it = segments_.find(seg);
    if (it == segments_.end()) {
      SegmentMeta fresh;
      fresh.page_size = PageSizeFromBytes(page_size);
      fresh.dirty = true;
      it = segments_.emplace(seg, fresh).first;
      crash_torn_.erase(seg);  // durable redo references it: reinstated
    }
    if (it->second.page_count <= page) {
      it->second.page_count = page + 1;
      it->second.dirty = true;
    }
  }

  RedoChainResult result;

  // Resident page: replay in place under the frame latch, or a later Fix
  // would serve the stale frame over our device-side bytes. Left dirty for
  // the post-recovery checkpoint like any other mutation.
  if (Frame* frame = buffer_->TryFix(PageId{seg, page}); frame != nullptr) {
    {
      std::unique_lock<std::shared_mutex> latch(frame->latch);
      char* data = frame->data.get();
      bool dirtied = false;
      for (const RedoEntry& e : entries) {
        // Redo idempotence (ARIES): apply iff the page is older.
        if (PageHeader::lsn(data) >= e.lsn) {
          result.skipped++;
          continue;
        }
        for (const auto& [offset, bytes] : e.ranges) {
          std::memcpy(data + offset, bytes.data(), bytes.size());
        }
        PageHeader::set_lsn(data, e.lsn);
        dirtied = true;
        result.applied++;
      }
      if (dirtied) buffer_->MarkDirty(frame);
    }
    buffer_->Unfix(frame);
    return result;
  }

  // Non-resident: replay the whole chain on a worker-local copy of the
  // device image and write it back once, sealed. The redo records came out
  // of the durable log, so writing the page before any further log force
  // cannot violate the WAL rule; bypassing the buffer keeps parallel
  // workers off the pool mutex and recovery's working set out of the LRU.
  auto image = std::make_unique<char[]>(page_size);
  char* data = image.get();
  PRIMA_RETURN_IF_ERROR(device_->Read(seg, page, data));
  // A never-written page reads back all-zero and is a valid fresh base;
  // anything else failing its CRC is torn and waits for a full image.
  bool torn =
      !PageHeader::Verify(data, page_size) && !PageIsAllZero(data, page_size);
  bool dirtied = false;
  for (const RedoEntry& e : entries) {
    bool healed = false;
    if (torn) {
      if (!IsFullImage(e, page_size)) continue;  // held back, may stay torn
      std::memset(data, 0, page_size);
      torn = false;
      healed = true;
    }
    if (!healed && PageHeader::lsn(data) >= e.lsn) {
      result.skipped++;
      continue;
    }
    for (const auto& [offset, bytes] : e.ranges) {
      std::memcpy(data + offset, bytes.data(), bytes.size());
    }
    PageHeader::set_lsn(data, e.lsn);
    dirtied = true;
    result.applied++;
  }
  if (torn) {
    // No full image in the chain: unrecoverable by replay. Leave the torn
    // device bytes untouched for forensics / media recovery.
    result.torn = true;
    return result;
  }
  if (dirtied) {
    PageHeader::Seal(data, page_size);
    PRIMA_RETURN_IF_ERROR(device_->Write(seg, page, data));
  }
  return result;
}

Status StorageSystem::RecoverSegmentMeta(SegmentId seg, PageSize size,
                                         uint32_t page_count,
                                         uint32_t free_head) {
  if (!device_->Exists(seg)) {
    PRIMA_RETURN_IF_ERROR(device_->Create(seg, PageSizeBytes(size)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  crash_torn_.erase(seg);  // replay repeated the creation: addressable again
  SegmentMeta& meta = segments_[seg];
  meta.page_size = size;
  meta.page_count = std::max(meta.page_count, page_count);
  meta.free_head = free_head;
  meta.dirty = true;
  return Status::Ok();
}

std::vector<SegmentId> StorageSystem::CrashTornSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SegmentId>(crash_torn_.begin(), crash_torn_.end());
}

Result<size_t> StorageSystem::DropUnrecoveredSegments() {
  std::set<SegmentId> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(crash_torn_);
  }
  for (SegmentId id : doomed) {
    PRIMA_RETURN_IF_ERROR(device_->Remove(id));
  }
  return doomed.size();
}

}  // namespace prima::storage
