#include "storage/block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace prima::storage {

using util::Result;
using util::Status;

namespace {
bool ValidBlockSize(uint32_t bs) {
  for (PageSize s : kAllPageSizes) {
    if (PageSizeBytes(s) == bs) return true;
  }
  return false;
}
}  // namespace

// ---------------------------------------------------------------------------
// MemoryBlockDevice
// ---------------------------------------------------------------------------

Status MemoryBlockDevice::Create(FileId file, uint32_t block_size) {
  if (!ValidBlockSize(block_size)) {
    return Status::InvalidArgument("unsupported block size " +
                                   std::to_string(block_size));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(file) != 0) {
    return Status::AlreadyExists("file " + std::to_string(file));
  }
  files_[file].block_size = block_size;
  return Status::Ok();
}

Status MemoryBlockDevice::Remove(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(file) == 0) {
    return Status::NotFound("file " + std::to_string(file));
  }
  return Status::Ok();
}

bool MemoryBlockDevice::Exists(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(file) != 0;
}

Result<uint32_t> MemoryBlockDevice::BlockSizeOf(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("file " + std::to_string(file));
  }
  return it->second.block_size;
}

std::vector<BlockDevice::FileId> MemoryBlockDevice::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (const auto& [id, f] : files_) out.push_back(id);
  return out;
}

Status MemoryBlockDevice::ReadLocked(File& f, uint64_t block, char* dst) {
  if (block < f.blocks.size() && !f.blocks[block].empty()) {
    std::memcpy(dst, f.blocks[block].data(), f.block_size);
  } else {
    std::memset(dst, 0, f.block_size);
  }
  return Status::Ok();
}

Status MemoryBlockDevice::WriteLocked(File& f, uint64_t block,
                                      const char* src) {
  if (block >= f.blocks.size()) f.blocks.resize(block + 1);
  f.blocks[block].assign(src, f.block_size);
  return Status::Ok();
}

Status MemoryBlockDevice::Read(FileId file, uint64_t block, char* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("file " + std::to_string(file));
  stats_.block_reads++;
  stats_.blocks_read++;
  return ReadLocked(it->second, block, dst);
}

Status MemoryBlockDevice::Write(FileId file, uint64_t block, const char* src) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("file " + std::to_string(file));
  stats_.block_writes++;
  stats_.blocks_written++;
  return WriteLocked(it->second, block, src);
}

Status MemoryBlockDevice::ReadChained(FileId file,
                                      const std::vector<uint64_t>& blocks,
                                      char* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("file " + std::to_string(file));
  stats_.chained_reads++;
  stats_.blocks_read += blocks.size();
  for (size_t i = 0; i < blocks.size(); ++i) {
    PRIMA_RETURN_IF_ERROR(
        ReadLocked(it->second, blocks[i], dst + i * it->second.block_size));
  }
  return Status::Ok();
}

Status MemoryBlockDevice::WriteChained(FileId file,
                                       const std::vector<uint64_t>& blocks,
                                       const char* src) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) return Status::NotFound("file " + std::to_string(file));
  stats_.chained_writes++;
  stats_.blocks_written += blocks.size();
  for (size_t i = 0; i < blocks.size(); ++i) {
    PRIMA_RETURN_IF_ERROR(
        WriteLocked(it->second, blocks[i], src + i * it->second.block_size));
  }
  return Status::Ok();
}

std::unique_ptr<MemoryBlockDevice> MemoryBlockDevice::Clone() const {
  auto copy = std::make_unique<MemoryBlockDevice>();
  std::lock_guard<std::mutex> lock(mu_);
  copy->files_ = files_;
  return copy;
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

namespace {
constexpr uint32_t kDeviceHeaderSize = 512;
constexpr uint32_t kDeviceMagic = 0x50524D41;  // "PRMA"
}  // namespace

FileBlockDevice::FileBlockDevice(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

FileBlockDevice::~FileBlockDevice() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, f] : open_) {
    if (f.fd >= 0) ::close(f.fd);
  }
}

std::string FileBlockDevice::PathFor(FileId file) const {
  return directory_ + "/seg_" + std::to_string(file) + ".prima";
}

Status FileBlockDevice::Create(FileId file, uint32_t block_size) {
  if (!ValidBlockSize(block_size)) {
    return Status::InvalidArgument("unsupported block size " +
                                   std::to_string(block_size));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = PathFor(file);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return Status::AlreadyExists(path);
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  char header[kDeviceHeaderSize] = {};
  util::EncodeFixed32(header, kDeviceMagic);
  util::EncodeFixed32(header + 4, block_size);
  if (::pwrite(fd, header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    return Status::IoError("write header " + path);
  }
  open_[file] = OpenFile{fd, block_size};
  return Status::Ok();
}

util::Result<FileBlockDevice::OpenFile*> FileBlockDevice::GetOpen(FileId file) {
  auto it = open_.find(file);
  if (it != open_.end()) return &it->second;
  const std::string path = PathFor(file);
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) return Status::NotFound(path);
  char header[kDeviceHeaderSize];
  if (::pread(fd, header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    return Status::Corruption("short device header in " + path);
  }
  if (util::DecodeFixed32(header) != kDeviceMagic) {
    ::close(fd);
    return Status::Corruption("bad magic in " + path);
  }
  const uint32_t bs = util::DecodeFixed32(header + 4);
  if (!ValidBlockSize(bs)) {
    ::close(fd);
    return Status::Corruption("bad block size in " + path);
  }
  auto [pos, inserted] = open_.emplace(file, OpenFile{fd, bs});
  (void)inserted;
  return &pos->second;
}

Status FileBlockDevice::Remove(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(file);
  if (it != open_.end()) {
    ::close(it->second.fd);
    open_.erase(it);
  }
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(file), ec)) {
    return Status::NotFound(PathFor(file));
  }
  return Status::Ok();
}

bool FileBlockDevice::Exists(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_.count(file) != 0) return true;
  std::error_code ec;
  return std::filesystem::exists(PathFor(file), ec);
}

Result<uint32_t> FileBlockDevice::BlockSizeOf(FileId file) const {
  auto* self = const_cast<FileBlockDevice*>(this);
  std::lock_guard<std::mutex> lock(mu_);
  auto open = self->GetOpen(file);
  if (!open.ok()) return open.status();
  return (*open)->block_size;
}

std::vector<BlockDevice::FileId> FileBlockDevice::ListFiles() const {
  std::vector<FileId> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg_", 0) == 0 && name.size() > 10 &&
        name.substr(name.size() - 6) == ".prima") {
      out.push_back(static_cast<FileId>(
          std::stoul(name.substr(4, name.size() - 10))));
    }
  }
  return out;
}

Status FileBlockDevice::Read(FileId file, uint64_t block, char* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto open = GetOpen(file);
  if (!open.ok()) return open.status();
  OpenFile* f = *open;
  stats_.block_reads++;
  stats_.blocks_read++;
  const off_t off = kDeviceHeaderSize + block * f->block_size;
  const ssize_t n = ::pread(f->fd, dst, f->block_size, off);
  if (n < 0) return Status::IoError(std::strerror(errno));
  if (n < static_cast<ssize_t>(f->block_size)) {
    // Never-written tail: zero-fill (same semantics as the memory device).
    std::memset(dst + n, 0, f->block_size - n);
  }
  return Status::Ok();
}

Status FileBlockDevice::Write(FileId file, uint64_t block, const char* src) {
  std::lock_guard<std::mutex> lock(mu_);
  auto open = GetOpen(file);
  if (!open.ok()) return open.status();
  OpenFile* f = *open;
  stats_.block_writes++;
  stats_.blocks_written++;
  const off_t off = kDeviceHeaderSize + block * f->block_size;
  if (::pwrite(f->fd, src, f->block_size, off) !=
      static_cast<ssize_t>(f->block_size)) {
    return Status::IoError(std::strerror(errno));
  }
  return Status::Ok();
}

Status FileBlockDevice::ReadChained(FileId file,
                                    const std::vector<uint64_t>& blocks,
                                    char* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto open = GetOpen(file);
  if (!open.ok()) return open.status();
  OpenFile* f = *open;
  stats_.chained_reads++;
  stats_.blocks_read += blocks.size();
  for (size_t i = 0; i < blocks.size(); ++i) {
    const off_t off = kDeviceHeaderSize + blocks[i] * f->block_size;
    const ssize_t n =
        ::pread(f->fd, dst + i * f->block_size, f->block_size, off);
    if (n < 0) return Status::IoError(std::strerror(errno));
    if (n < static_cast<ssize_t>(f->block_size)) {
      std::memset(dst + i * f->block_size + n, 0, f->block_size - n);
    }
  }
  return Status::Ok();
}

Status FileBlockDevice::WriteChained(FileId file,
                                     const std::vector<uint64_t>& blocks,
                                     const char* src) {
  std::lock_guard<std::mutex> lock(mu_);
  auto open = GetOpen(file);
  if (!open.ok()) return open.status();
  OpenFile* f = *open;
  stats_.chained_writes++;
  stats_.blocks_written += blocks.size();
  for (size_t i = 0; i < blocks.size(); ++i) {
    const off_t off = kDeviceHeaderSize + blocks[i] * f->block_size;
    if (::pwrite(f->fd, src + i * f->block_size, f->block_size, off) !=
        static_cast<ssize_t>(f->block_size)) {
      return Status::IoError(std::strerror(errno));
    }
  }
  return Status::Ok();
}

Status FileBlockDevice::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, f] : open_) {
    if (f.fd >= 0 && ::fsync(f.fd) != 0) {
      return Status::IoError("fsync: " + std::string(std::strerror(errno)));
    }
  }
  return Status::Ok();
}

}  // namespace prima::storage
