#include "storage/buffer_manager.h"

#include <cassert>
#include <cstring>

#include "obs/trace.h"

namespace prima::storage {

using util::Result;
using util::Status;

BufferManager::BufferManager(BlockDevice* device, size_t budget_bytes,
                             BufferPolicy policy, size_t shards)
    : device_(device), policy_(policy) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const size_t slice = budget_bytes / shards;
    if (policy_ == BufferPolicy::kUnifiedLru) {
      shard->budget[0] = slice;
    } else {
      // Static partitioning: equal byte share per page size class.
      for (int c = 0; c < 5; ++c) shard->budget[c] = slice / 5;
    }
    shards_.push_back(std::move(shard));
  }
}

BufferManager::~BufferManager() {
  // Best effort: callers are expected to FlushAll before destruction;
  // remaining dirty pages are written back here so tests that forget an
  // explicit flush still observe durable data with the file device.
  // Disabled via set_flush_on_close when a WAL owns durability — see
  // StorageSystem::set_flush_on_close.
  if (flush_on_close_) (void)FlushAll();
}

int BufferManager::SizeClass(uint32_t page_size) {
  switch (page_size) {
    case 512: return 0;
    case 1024: return 1;
    case 2048: return 2;
    case 4096: return 3;
    case 8192: return 4;
  }
  return 0;
}

Status BufferManager::WriteBack(Frame* frame) {
  std::shared_lock<std::shared_mutex> latch(frame->latch);
  if (wal_ != nullptr) {
    // The WAL rule: the log record describing the page's newest change must
    // reach the device before the page does, or a crash between the two
    // writes leaves an update that can neither be redone nor undone.
    // page_lsn is the START of the record describing the newest change, so
    // equality with durable_lsn() still means that record is NOT on the
    // device yet.
    const uint64_t page_lsn = PageHeader::lsn(frame->data.get());
    if (page_lsn >= wal_->durable_lsn()) {
      PRIMA_RETURN_IF_ERROR(wal_->ForceUpTo(page_lsn));
    }
    assert(PageHeader::lsn(frame->data.get()) == 0 ||
           PageHeader::lsn(frame->data.get()) < wal_->durable_lsn());
  }
  PageHeader::Seal(frame->data.get(), frame->size);
  PRIMA_RETURN_IF_ERROR(
      device_->Write(frame->id.segment, frame->id.page, frame->data.get()));
  frame->dirty = false;
  ShardOf(frame->id).writebacks++;
  stats_.writebacks++;
  return Status::Ok();
}

Status BufferManager::MakeRoom(Shard& shard, int size_class, uint32_t bytes) {
  const int chain = policy_ == BufferPolicy::kUnifiedLru ? 0 : size_class;
  if (bytes > shard.budget[chain]) {
    return Status::NoSpace("page larger than buffer budget");
  }
  // Clock / second-chance sweep, size-aware as in the paper (§3.3: "the
  // well-known LRU algorithm was altered in an appropriate way"): one
  // incoming page may displace several small victims (or one large one).
  // The hand is the ring's front; a referenced frame loses its bit and
  // rotates to the back, a pinned frame just rotates. Two full rotations
  // without freeing enough means every frame is pinned.
  std::list<Frame*>& ring = shard.ring[chain];
  size_t rotations = 0;
  const size_t rotation_limit = 2 * ring.size();
  while (shard.used[chain] + bytes > shard.budget[chain]) {
    if (ring.empty() || rotations > rotation_limit) {
      return Status::NoSpace("all buffer frames pinned");
    }
    Frame* victim = ring.front();
    if (victim->pins > 0) {
      ring.splice(ring.end(), ring, ring.begin());
      ++rotations;
      continue;
    }
    if (victim->referenced) {
      victim->referenced = false;
      ring.splice(ring.end(), ring, ring.begin());
      ++rotations;
      continue;
    }
    if (victim->dirty) {
      PRIMA_RETURN_IF_ERROR(WriteBack(victim));
    }
    shard.used[chain] -= victim->size;
    ring.pop_front();
    shard.frames.erase(victim->id);
    shard.evictions++;
    stats_.evictions++;
  }
  return Status::Ok();
}

Result<Frame*> BufferManager::Fix(PageId id, uint32_t page_size,
                                  bool format_new) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  const int chain = ChainOf(page_size);
  if (it != shard.frames.end()) {
    Frame* f = it->second.get();
    // Pin first, then account: the hit only exists once the frame is
    // pinned and verifiably still mapped to the requested page. Counting
    // before the pin would book phantom hits for frames a concurrent
    // eviction recycles in the probe/reuse window.
    f->pins++;
    assert(f->id == id);
    f->referenced = true;  // clock: survives the next sweep pass
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    if (obs::StatementTrace* trace = obs::CurrentTrace()) {
      trace->buffer_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return f;
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  stats_.misses.fetch_add(1, std::memory_order_relaxed);
  // Traced statements attribute the miss — and the device-read time below —
  // to their span tree. One thread-local load when untraced.
  obs::StatementTrace* trace = obs::CurrentTrace();
  if (trace != nullptr) {
    trace->buffer_misses.fetch_add(1, std::memory_order_relaxed);
  }
  PRIMA_RETURN_IF_ERROR(MakeRoom(shard, SizeClass(page_size), page_size));

  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->size = page_size;
  frame->data = std::make_unique<char[]>(page_size);
  if (format_new) {
    std::memset(frame->data.get(), 0, page_size);
  } else {
    const uint64_t t0 = trace ? obs::NowNs() : 0;
    PRIMA_RETURN_IF_ERROR(device_->Read(id.segment, id.page, frame->data.get()));
    if (trace != nullptr) {
      trace->buffer_miss_ns.fetch_add(obs::NowNs() - t0,
                                      std::memory_order_relaxed);
    }
    // Fault tolerance: verify the page checksum. Never-written pages read
    // back as all-zero and are accepted as fresh.
    if (!PageHeader::Verify(frame->data.get(), page_size) &&
        !PageIsAllZero(frame->data.get(), page_size)) {
      return Status::Corruption("checksum mismatch on segment " +
                                std::to_string(id.segment) + " page " +
                                std::to_string(id.page));
    }
  }
  frame->pins = 1;
  frame->dirty = format_new;
  // referenced stays false: a newly inserted page gets no second chance
  // until it is actually hit again, which keeps clock's victim choice
  // aligned with LRU for fix-once pages.
  Frame* raw = frame.get();
  raw->ring_pos = shard.ring[chain].insert(shard.ring[chain].end(), raw);
  shard.used[chain] += page_size;
  shard.frames[id] = std::move(frame);
  return raw;
}

Frame* BufferManager::TryFix(PageId id) {
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return nullptr;
  Frame* f = it->second.get();
  f->pins++;
  return f;
}

void BufferManager::Unfix(Frame* frame) {
  Shard& shard = ShardOf(frame->id);
  std::lock_guard<std::mutex> lock(shard.mu);
  assert(frame->pins > 0);
  frame->pins--;
}

void BufferManager::MarkDirty(Frame* frame) { frame->dirty = true; }

Status BufferManager::Prefetch(SegmentId segment,
                               const std::vector<uint32_t>& pages,
                               uint32_t page_size) {
  // Presence probe per page under its shard lock only — the chained device
  // read below runs with no pool lock held, so concurrent fixes (even of
  // the same pages) proceed; duplicates are dropped at insert time.
  std::vector<uint64_t> missing;
  for (uint32_t p : pages) {
    const PageId id{segment, p};
    Shard& shard = ShardOf(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.frames.find(id) == shard.frames.end()) {
      missing.push_back(p);
    }
  }
  if (missing.empty()) return Status::Ok();

  std::string bulk(missing.size() * page_size, '\0');
  PRIMA_RETURN_IF_ERROR(device_->ReadChained(segment, missing, bulk.data()));

  const int chain = ChainOf(page_size);
  for (size_t i = 0; i < missing.size(); ++i) {
    const char* src = bulk.data() + i * page_size;
    if (!PageHeader::Verify(src, page_size) && !PageIsAllZero(src, page_size)) {
      return Status::Corruption("checksum mismatch in chained read, page " +
                                std::to_string(missing[i]));
    }
    const PageId id{segment, static_cast<uint32_t>(missing[i])};
    Shard& shard = ShardOf(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.frames.find(id) != shard.frames.end()) continue;  // raced a Fix
    PRIMA_RETURN_IF_ERROR(MakeRoom(shard, SizeClass(page_size), page_size));
    auto frame = std::make_unique<Frame>();
    frame->id = id;
    frame->size = page_size;
    frame->data = std::make_unique<char[]>(page_size);
    std::memcpy(frame->data.get(), src, page_size);
    Frame* raw = frame.get();
    raw->ring_pos = shard.ring[chain].insert(shard.ring[chain].end(), raw);
    shard.used[chain] += page_size;
    shard.frames[id] = std::move(frame);
    shard.prefetched++;
    stats_.prefetched_pages++;
  }
  return Status::Ok();
}

Status BufferManager::FlushAll() {
  // Two phases: pin the dirty frames under each shard's mutex, then write
  // them back with every mutex released. Write-back waits on each frame's
  // latch, and a latch holder may itself need a shard (fixing further
  // pages mid-operation) — so the flusher must not hold any while waiting.
  std::vector<Frame*> dirty;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (frame->dirty) {
        frame->pins++;
        dirty.push_back(frame.get());
      }
    }
  }
  // Checkpoint fast path: one force covering everything logged so far turns
  // the per-page WAL-rule forces inside WriteBack into no-ops. Without
  // this, a flush of N dirty pages can issue up to N small log writes.
  Status first_error;
  if (wal_ != nullptr && !dirty.empty()) {
    first_error = wal_->ForceUpTo(wal_->append_lsn());
  }
  for (Frame* frame : dirty) {
    if (!first_error.ok()) break;  // a full WAL fails every write-back too
    const Status st = WriteBack(frame);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  for (Frame* frame : dirty) {
    Unfix(frame);
  }
  return first_error;
}

Status BufferManager::Discard(SegmentId segment) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->frames.begin(); it != shard->frames.end();) {
      if (it->first.segment == segment) {
        Frame* f = it->second.get();
        if (f->pins > 0) {
          return Status::Conflict("discarding pinned page");
        }
        const int chain = ChainOf(f->size);
        shard->ring[chain].erase(f->ring_pos);
        shard->used[chain] -= f->size;
        it = shard->frames.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::Ok();
}

size_t BufferManager::resident_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (int c = 0; c < 5; ++c) total += shard->used[c];
  }
  return total;
}

BufferStatsSnapshot BufferManager::SnapshotStats() const {
  BufferStatsSnapshot snap;
  snap.hits = stats_.hits;
  snap.misses = stats_.misses;
  snap.evictions = stats_.evictions;
  snap.writebacks = stats_.writebacks;
  snap.prefetched_pages = stats_.prefetched_pages;
  snap.readahead_batches = stats_.readahead_batches;
  snap.readahead_dropped = stats_.readahead_dropped;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    BufferStatsSnapshot::Shard s;
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.evictions = shard->evictions;
    s.writebacks = shard->writebacks;
    s.prefetched_pages = shard->prefetched;
    std::lock_guard<std::mutex> lock(shard->mu);
    for (int c = 0; c < 5; ++c) s.resident_bytes += shard->used[c];
    snap.shards.push_back(s);
  }
  return snap;
}

}  // namespace prima::storage
