#include "storage/buffer_manager.h"

#include <cassert>
#include <cstring>

namespace prima::storage {

using util::Result;
using util::Status;

BufferManager::BufferManager(BlockDevice* device, size_t budget_bytes,
                             BufferPolicy policy)
    : device_(device), policy_(policy) {
  if (policy_ == BufferPolicy::kUnifiedLru) {
    budget_[0] = budget_bytes;
  } else {
    // Static partitioning: equal byte share per page size class.
    for (int c = 0; c < 5; ++c) budget_[c] = budget_bytes / 5;
  }
}

BufferManager::~BufferManager() {
  // Best effort: callers are expected to FlushAll before destruction;
  // remaining dirty pages are written back here so tests that forget an
  // explicit flush still observe durable data with the file device.
  // Disabled via set_flush_on_close when a WAL owns durability — see
  // StorageSystem::set_flush_on_close.
  if (flush_on_close_) (void)FlushAll();
}

int BufferManager::SizeClass(uint32_t page_size) {
  switch (page_size) {
    case 512: return 0;
    case 1024: return 1;
    case 2048: return 2;
    case 4096: return 3;
    case 8192: return 4;
  }
  return 0;
}

Status BufferManager::WriteBack(Frame* frame) {
  std::shared_lock<std::shared_mutex> latch(frame->latch);
  if (wal_ != nullptr) {
    // The WAL rule: the log record describing the page's newest change must
    // reach the device before the page does, or a crash between the two
    // writes leaves an update that can neither be redone nor undone.
    const uint64_t page_lsn = PageHeader::lsn(frame->data.get());
    if (page_lsn > wal_->durable_lsn()) {
      PRIMA_RETURN_IF_ERROR(wal_->ForceUpTo(page_lsn));
    }
    assert(PageHeader::lsn(frame->data.get()) <= wal_->durable_lsn());
  }
  PageHeader::Seal(frame->data.get(), frame->size);
  PRIMA_RETURN_IF_ERROR(
      device_->Write(frame->id.segment, frame->id.page, frame->data.get()));
  frame->dirty = false;
  stats_.writebacks++;
  return Status::Ok();
}

Status BufferManager::MakeRoom(int size_class, uint32_t bytes) {
  const int chain = policy_ == BufferPolicy::kUnifiedLru ? 0 : size_class;
  if (bytes > budget_[chain]) {
    return Status::NoSpace("page larger than buffer budget");
  }
  // Paper §3.3: "the well-known LRU algorithm was altered in an appropriate
  // way" — with mixed page sizes one incoming page may displace several
  // small victims (or one large one); we walk the cold end until the bytes
  // fit, skipping pinned frames.
  auto it = lru_[chain].begin();
  while (used_[chain] + bytes > budget_[chain]) {
    if (it == lru_[chain].end()) {
      return Status::NoSpace("all buffer frames pinned");
    }
    Frame* victim = *it;
    if (victim->pins > 0) {
      ++it;
      continue;
    }
    if (victim->dirty) {
      PRIMA_RETURN_IF_ERROR(WriteBack(victim));
    }
    used_[chain] -= victim->size;
    it = lru_[chain].erase(it);
    frames_.erase(victim->id);
    stats_.evictions++;
  }
  return Status::Ok();
}

Result<Frame*> BufferManager::Fix(PageId id, uint32_t page_size,
                                  bool format_new) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  const int chain =
      policy_ == BufferPolicy::kUnifiedLru ? 0 : SizeClass(page_size);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    stats_.hits++;
    // Move to the hot end.
    lru_[chain].erase(f->lru_pos);
    f->lru_pos = lru_[chain].insert(lru_[chain].end(), f);
    f->pins++;
    return f;
  }
  stats_.misses++;
  PRIMA_RETURN_IF_ERROR(MakeRoom(SizeClass(page_size), page_size));

  auto frame = std::make_unique<Frame>();
  frame->id = id;
  frame->size = page_size;
  frame->data = std::make_unique<char[]>(page_size);
  if (format_new) {
    std::memset(frame->data.get(), 0, page_size);
  } else {
    PRIMA_RETURN_IF_ERROR(device_->Read(id.segment, id.page, frame->data.get()));
    // Fault tolerance: verify the page checksum. Never-written pages read
    // back as all-zero and are accepted as fresh.
    if (!PageHeader::Verify(frame->data.get(), page_size) &&
        !PageIsAllZero(frame->data.get(), page_size)) {
      return Status::Corruption("checksum mismatch on segment " +
                                std::to_string(id.segment) + " page " +
                                std::to_string(id.page));
    }
  }
  frame->pins = 1;
  frame->dirty = format_new;
  Frame* raw = frame.get();
  raw->lru_pos = lru_[chain].insert(lru_[chain].end(), raw);
  used_[chain] += page_size;
  frames_[id] = std::move(frame);
  return raw;
}

Frame* BufferManager::TryFix(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) return nullptr;
  Frame* f = it->second.get();
  f->pins++;
  return f;
}

void BufferManager::Unfix(Frame* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(frame->pins > 0);
  frame->pins--;
}

void BufferManager::MarkDirty(Frame* frame) { frame->dirty = true; }

Status BufferManager::Prefetch(SegmentId segment,
                               const std::vector<uint32_t>& pages,
                               uint32_t page_size) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> missing;
  for (uint32_t p : pages) {
    if (frames_.find(PageId{segment, p}) == frames_.end()) {
      missing.push_back(p);
    }
  }
  if (missing.empty()) return Status::Ok();

  const int chain =
      policy_ == BufferPolicy::kUnifiedLru ? 0 : SizeClass(page_size);
  PRIMA_RETURN_IF_ERROR(MakeRoom(
      SizeClass(page_size), static_cast<uint32_t>(missing.size() * page_size)));

  std::string bulk(missing.size() * page_size, '\0');
  PRIMA_RETURN_IF_ERROR(device_->ReadChained(segment, missing, bulk.data()));

  for (size_t i = 0; i < missing.size(); ++i) {
    const char* src = bulk.data() + i * page_size;
    if (!PageHeader::Verify(src, page_size) && !PageIsAllZero(src, page_size)) {
      return Status::Corruption("checksum mismatch in chained read, page " +
                                std::to_string(missing[i]));
    }
    auto frame = std::make_unique<Frame>();
    frame->id = PageId{segment, static_cast<uint32_t>(missing[i])};
    frame->size = page_size;
    frame->data = std::make_unique<char[]>(page_size);
    std::memcpy(frame->data.get(), src, page_size);
    Frame* raw = frame.get();
    raw->lru_pos = lru_[chain].insert(lru_[chain].end(), raw);
    used_[chain] += page_size;
    frames_[raw->id] = std::move(frame);
    stats_.prefetched_pages++;
  }
  return Status::Ok();
}

Status BufferManager::FlushAll() {
  // Two phases: pin the dirty frames under mu_, then write them back with
  // mu_ released. Write-back waits on each frame's latch, and a latch
  // holder may itself need mu_ (fixing further pages mid-operation) — so
  // the flusher must not hold it while waiting.
  std::vector<Frame*> dirty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, frame] : frames_) {
      if (frame->dirty) {
        frame->pins++;
        dirty.push_back(frame.get());
      }
    }
  }
  // Checkpoint fast path: one force covering everything logged so far turns
  // the per-page WAL-rule forces inside WriteBack into no-ops. Without
  // this, a flush of N dirty pages can issue up to N small log writes.
  Status first_error;
  if (wal_ != nullptr && !dirty.empty()) {
    first_error = wal_->ForceUpTo(wal_->append_lsn());
  }
  for (Frame* frame : dirty) {
    if (!first_error.ok()) break;  // a full WAL fails every write-back too
    const Status st = WriteBack(frame);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Frame* frame : dirty) frame->pins--;
  }
  return first_error;
}

Status BufferManager::Discard(SegmentId segment) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->first.segment == segment) {
      Frame* f = it->second.get();
      if (f->pins > 0) {
        return Status::Conflict("discarding pinned page");
      }
      const int chain =
          policy_ == BufferPolicy::kUnifiedLru ? 0 : SizeClass(f->size);
      lru_[chain].erase(f->lru_pos);
      used_[chain] -= f->size;
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

size_t BufferManager::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (int c = 0; c < 5; ++c) total += used_[c];
  return total;
}

}  // namespace prima::storage
