#ifndef PRIMA_STORAGE_WAL_H_
#define PRIMA_STORAGE_WAL_H_

#include <cstdint>

#include "storage/page.h"
#include "util/status.h"

namespace prima::storage {

/// The block-device file holding the write-ahead log. Not a data segment:
/// StorageSystem::Open skips it and it never appears in ListSegments().
inline constexpr SegmentId kWalSegmentId = 0xFFFFFFFFu;

/// The append-only log archive: WAL blocks are copied here before circular
/// truncation recycles them, so the full log history stays readable for
/// media recovery (recovery::LogArchiver owns the format).
inline constexpr SegmentId kArchiveSegmentId = 0xFFFFFFFEu;

/// The fuzzy-backup dump files (recovery::BackupManager owns the format).
/// Two alternating slots, like the WAL's dual master slots: a new dump is
/// written into the slot NOT holding the newest committed dump, so a crash
/// mid-backup can never destroy the last good one. They model separate
/// backup media: destroying every data segment while these (plus WAL +
/// archive) survive is the media-recovery scenario.
inline constexpr SegmentId kBackupSegmentId = 0xFFFFFFFDu;
inline constexpr SegmentId kBackupAltSegmentId = 0xFFFFFFFCu;

/// Files the storage layer must never treat as data segments (the WAL, the
/// log archive, and the backup dumps live at the top of the id space).
inline constexpr bool IsReservedFileId(SegmentId id) {
  return id >= kBackupAltSegmentId;
}

/// The storage layer's view of the write-ahead log (implemented by
/// recovery::WalWriter). Kept abstract here so storage/ does not depend on
/// recovery/ headers: the buffer manager only needs the WAL rule primitives
/// (force before write-back), and PageGuard only needs to append
/// physiological redo for the page bytes it changed.
class WriteAheadLog {
 public:
  virtual ~WriteAheadLog() = default;

  /// Append a physiological redo record for the byte ranges that differ
  /// between `before` and `after` (both `page_size` bytes). The page-LSN and
  /// checksum header fields are excluded from the diff — the caller stamps
  /// the returned LSN into the header, and checksums are recomputed at
  /// write-back. Returns the record's LSN, or 0 when the images are
  /// identical outside those fields (nothing logged).
  virtual uint64_t LogPageDelta(SegmentId segment, uint32_t page,
                                uint32_t page_size, const char* before,
                                const char* after) = 0;

  /// Append a physiological redo record carrying the complete page image
  /// (excluding checksum and page-LSN fields). Used for freshly formatted
  /// pages, whose prior on-device bytes are unknown to the buffer — a delta
  /// against the in-memory before image would not replay correctly onto a
  /// recycled free-list page. Returns the record's LSN.
  virtual uint64_t LogFullPage(SegmentId segment, uint32_t page,
                               uint32_t page_size, const char* after) = 0;

  /// Append a segment-metadata redo record (page_count / free list head).
  /// Covers the bookkeeping that otherwise reaches the device only at
  /// flush time. Returns the record's LSN.
  virtual uint64_t LogSegmentMeta(SegmentId segment, uint8_t page_size_code,
                                  uint32_t page_count, uint32_t free_head) = 0;

  /// Make the log durable up to and including `lsn` (group commit: one
  /// device write covers every record buffered so far). This is the
  /// WAL-rule force used on the write-back path — it never waits out a
  /// commit-delay window (that is the commit path's own entry point).
  virtual util::Status ForceUpTo(uint64_t lsn) = 0;

  /// Highest LSN guaranteed on the device. The WAL rule: a dirty page may
  /// be written back only once its page-LSN <= durable_lsn().
  virtual uint64_t durable_lsn() const = 0;

  /// Next LSN to be assigned (current end of the stream). A checkpoint
  /// flush forces up to here once, in front of the write-back loop, so the
  /// per-page WAL-rule forces all turn into no-ops (one big device write
  /// instead of one per dirty page).
  virtual uint64_t append_lsn() const = 0;

  /// Checkpoint epoch, bumped on every checkpoint-begin record. A page's
  /// FIRST mutation in a new epoch is logged as a full image (not a delta):
  /// restart redo scans from the last checkpoint, so a page torn on disk
  /// can only be rebuilt if the scan starts with its complete contents —
  /// the same reasoning as PostgreSQL's full_page_writes.
  virtual uint64_t epoch() const = 0;
};

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_WAL_H_
