#ifndef PRIMA_STORAGE_PAGE_H_
#define PRIMA_STORAGE_PAGE_H_

#include <cstdint>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/slice.h"

namespace prima::storage {

/// Identifies a segment; doubles as the block-device file id.
using SegmentId = uint32_t;

/// The five page sizes supported by the storage system (paper §3.3): the
/// underlying file manager supports exactly these block sizes, so the
/// block<->page mapping is the identity.
enum class PageSize : uint8_t {
  k512 = 0,
  k1K = 1,
  k2K = 2,
  k4K = 3,
  k8K = 4,
};

constexpr uint32_t PageSizeBytes(PageSize s) {
  switch (s) {
    case PageSize::k512: return 512;
    case PageSize::k1K: return 1024;
    case PageSize::k2K: return 2048;
    case PageSize::k4K: return 4096;
    case PageSize::k8K: return 8192;
  }
  return 0;
}

constexpr PageSize kAllPageSizes[] = {PageSize::k512, PageSize::k1K,
                                      PageSize::k2K, PageSize::k4K,
                                      PageSize::k8K};

/// Inverse of PageSizeBytes (input must be one of the five sizes).
constexpr PageSize PageSizeFromBytes(uint32_t bytes) {
  switch (bytes) {
    case 512: return PageSize::k512;
    case 1024: return PageSize::k1K;
    case 2048: return PageSize::k2K;
    case 4096: return PageSize::k4K;
    case 8192: return PageSize::k8K;
  }
  return PageSize::k8K;
}

/// What a page is used for; stored in the page header so corruption and
/// misdirected reads are detectable.
enum class PageType : uint8_t {
  kFree = 0,
  kSegmentHeader = 1,
  kSlotted = 2,       ///< variable-length physical records
  kSeqHeader = 3,     ///< first page of a page sequence
  kSeqComponent = 4,  ///< further pages of a page sequence
  kBTreeInner = 5,
  kBTreeLeaf = 6,
  kGridDirectory = 7,
  kGridBucket = 8,
  kMeta = 9,          ///< catalog / bookkeeping
};

/// Common page header (paper: "the usual page header used for
/// identification, description, and fault tolerance").
///
/// Layout (little endian):
///   [0..4)   crc32 over bytes [4..page_size)
///   [4..8)   page_no
///   [8]      page_type
///   [9]      flags
///   [10..12) slot_count / type-specific u16
///   [12..14) free_start / type-specific u16
///   [14..16) type-specific u16
///   [16..24) type-specific u64 (free-list chain, B-tree sibling links, ...)
///   [24..32) page-LSN: LSN of the newest log record describing this page
struct PageHeader {
  static constexpr uint32_t kSize = 32;

  static uint32_t page_no(const char* page) {
    return util::DecodeFixed32(page + 4);
  }
  static void set_page_no(char* page, uint32_t no) {
    util::EncodeFixed32(page + 4, no);
  }
  static PageType type(const char* page) {
    return static_cast<PageType>(static_cast<unsigned char>(page[8]));
  }
  static void set_type(char* page, PageType t) {
    page[8] = static_cast<char>(t);
  }
  static uint8_t flags(const char* page) {
    return static_cast<uint8_t>(page[9]);
  }
  static void set_flags(char* page, uint8_t f) {
    page[9] = static_cast<char>(f);
  }
  static uint16_t u16a(const char* page) { return util::DecodeFixed16(page + 10); }
  static void set_u16a(char* page, uint16_t v) { util::EncodeFixed16(page + 10, v); }
  static uint16_t u16b(const char* page) { return util::DecodeFixed16(page + 12); }
  static void set_u16b(char* page, uint16_t v) { util::EncodeFixed16(page + 12, v); }
  static uint16_t u16c(const char* page) { return util::DecodeFixed16(page + 14); }
  static void set_u16c(char* page, uint16_t v) { util::EncodeFixed16(page + 14, v); }
  static uint64_t u64(const char* page) { return util::DecodeFixed64(page + 16); }
  static void set_u64(char* page, uint64_t v) { util::EncodeFixed64(page + 16, v); }
  /// Page-LSN (ARIES): the LSN of the newest redo record applied to this
  /// page. Gates both the WAL rule on write-back and redo idempotence.
  static uint64_t lsn(const char* page) { return util::DecodeFixed64(page + 24); }
  static void set_lsn(char* page, uint64_t v) { util::EncodeFixed64(page + 24, v); }

  /// Recompute and store the checksum (done by the buffer on write-back).
  static void Seal(char* page, uint32_t page_size) {
    util::EncodeFixed32(page, util::Crc32(util::Slice(page + 4, page_size - 4)));
  }
  /// Verify the stored checksum (done on every read from the device).
  static bool Verify(const char* page, uint32_t page_size) {
    return util::DecodeFixed32(page) ==
           util::Crc32(util::Slice(page + 4, page_size - 4));
  }

  /// Initialize a blank page of the given type.
  static void Format(char* page, uint32_t page_size, uint32_t page_no,
                     PageType t) {
    for (uint32_t i = 0; i < page_size; ++i) page[i] = 0;
    set_page_no(page, page_no);
    set_type(page, t);
  }
};

/// Bytes usable by the layer above, per page.
constexpr uint32_t PagePayload(uint32_t page_size_bytes) {
  return page_size_bytes - PageHeader::kSize;
}

/// A never-written device page reads back all-zero and counts as a valid
/// fresh base, NOT as torn — the single rule shared by the buffer's read
/// validation and recovery's direct page replay.
inline bool PageIsAllZero(const char* data, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    if (data[i] != 0) return false;
  }
  return true;
}

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_PAGE_H_
