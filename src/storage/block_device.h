#ifndef PRIMA_STORAGE_BLOCK_DEVICE_H_
#define PRIMA_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::storage {

/// I/O accounting. Chained transfers count as one operation regardless of
/// the number of blocks moved — this is the measurable benefit the paper
/// attributes to page sequences ("enabling an optimal transfer of the whole
/// page sequence, e.g. by chained I/O").
struct DeviceStats {
  std::atomic<uint64_t> block_reads{0};
  std::atomic<uint64_t> block_writes{0};
  std::atomic<uint64_t> chained_reads{0};
  std::atomic<uint64_t> chained_writes{0};
  std::atomic<uint64_t> blocks_read{0};
  std::atomic<uint64_t> blocks_written{0};

  /// Total device operations (the 1987 cost model: one op ~ one disk seek).
  uint64_t TotalOps() const {
    return block_reads + block_writes + chained_reads + chained_writes;
  }
  void Reset() {
    block_reads = block_writes = 0;
    chained_reads = chained_writes = 0;
    blocks_read = blocks_written = 0;
  }
};

/// The file-manager substrate (substitution for the INCAS OS file manager
/// [Ne87], see DESIGN.md §3): files of fixed block size, where the block
/// size menu is exactly the five page sizes, plus chained transfers.
class BlockDevice {
 public:
  using FileId = SegmentId;

  virtual ~BlockDevice() = default;

  /// Create a file of the given block size. Fails if it exists.
  virtual util::Status Create(FileId file, uint32_t block_size) = 0;
  /// Remove a file and its blocks.
  virtual util::Status Remove(FileId file) = 0;
  virtual bool Exists(FileId file) const = 0;
  virtual util::Result<uint32_t> BlockSizeOf(FileId file) const = 0;
  /// All existing files (for database reopen).
  virtual std::vector<FileId> ListFiles() const = 0;

  /// Read one block into dst (block_size bytes). Reading a block that was
  /// never written yields zeros.
  virtual util::Status Read(FileId file, uint64_t block, char* dst) = 0;
  virtual util::Status Write(FileId file, uint64_t block, const char* src) = 0;

  /// Chained transfer: move all listed blocks with a single device
  /// operation. dst/src holds blocks.size() * block_size bytes, in order.
  virtual util::Status ReadChained(FileId file,
                                   const std::vector<uint64_t>& blocks,
                                   char* dst) = 0;
  virtual util::Status WriteChained(FileId file,
                                    const std::vector<uint64_t>& blocks,
                                    const char* src) = 0;

  /// Make every completed write durable (fsync on file devices; a no-op on
  /// memory devices). Wrappers MUST forward this — the WAL's durability
  /// guarantee rides on it.
  virtual util::Status Sync() { return util::Status::Ok(); }

  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

 protected:
  DeviceStats stats_;
};

/// Heap-backed device: the default for tests and benchmarks (deterministic,
/// no filesystem dependence).
class MemoryBlockDevice : public BlockDevice {
 public:
  util::Status Create(FileId file, uint32_t block_size) override;
  util::Status Remove(FileId file) override;
  bool Exists(FileId file) const override;
  util::Result<uint32_t> BlockSizeOf(FileId file) const override;
  std::vector<FileId> ListFiles() const override;
  util::Status Read(FileId file, uint64_t block, char* dst) override;
  util::Status Write(FileId file, uint64_t block, const char* src) override;
  util::Status ReadChained(FileId file, const std::vector<uint64_t>& blocks,
                           char* dst) override;
  util::Status WriteChained(FileId file, const std::vector<uint64_t>& blocks,
                            const char* src) override;

  /// Deep copy of every file and block. Crash-recovery tests and benchmarks
  /// use it to recover the SAME crashed image several times (e.g. once per
  /// recovery_threads setting) and compare the outcomes bit for bit.
  std::unique_ptr<MemoryBlockDevice> Clone() const;

 private:
  struct File {
    uint32_t block_size = 0;
    std::vector<std::string> blocks;
  };

  util::Status ReadLocked(File& f, uint64_t block, char* dst);
  util::Status WriteLocked(File& f, uint64_t block, const char* src);

  mutable std::mutex mu_;
  std::map<FileId, File> files_;
};

/// POSIX file device: one file per segment under a directory. File layout:
/// a 512-byte device header (magic + block size) followed by the blocks.
class FileBlockDevice : public BlockDevice {
 public:
  /// The directory must exist (or be creatable).
  explicit FileBlockDevice(std::string directory);
  ~FileBlockDevice() override;

  util::Status Create(FileId file, uint32_t block_size) override;
  util::Status Remove(FileId file) override;
  bool Exists(FileId file) const override;
  util::Result<uint32_t> BlockSizeOf(FileId file) const override;
  std::vector<FileId> ListFiles() const override;
  util::Status Read(FileId file, uint64_t block, char* dst) override;
  util::Status Write(FileId file, uint64_t block, const char* src) override;
  util::Status ReadChained(FileId file, const std::vector<uint64_t>& blocks,
                           char* dst) override;
  util::Status WriteChained(FileId file, const std::vector<uint64_t>& blocks,
                            const char* src) override;

  /// fsync every open file (called by StorageSystem::Flush and the WAL).
  util::Status Sync() override;

 private:
  struct OpenFile {
    int fd = -1;
    uint32_t block_size = 0;
  };

  std::string PathFor(FileId file) const;
  util::Result<OpenFile*> GetOpen(FileId file);

  mutable std::mutex mu_;
  std::string directory_;
  std::map<FileId, OpenFile> open_;
};

}  // namespace prima::storage

#endif  // PRIMA_STORAGE_BLOCK_DEVICE_H_
