// MMO game-backend workload: the OLTP storm the PRIMA kernel was never
// sized for in the paper — thousands of small keyed transactions over hot
// rows from many concurrent sessions — next to the molecule query it WAS
// built for (a guild roster: guild + members + inventories in one FROM
// path).
//
//   - session tiers 1/8/32, each both in-process (core::Session threads)
//     and over the wire (net::Client per session): per-op-type p50/p99
//     latency, aggregate ops/s, and conflict/retry rates from the kernel's
//     contention counters;
//   - roster reads latest-committed vs snapshot isolation under the same
//     write storm: what MVCC buys the molecule scan when the hot rows it
//     traverses are being rewritten underneath it.
//
//   $ ./bench_mmo

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "net/server.h"
#include "workloads/mmo.h"

namespace prima::bench {
namespace {

using workloads::MmoConfig;
using workloads::MmoDriver;
using workloads::MmoOracle;
using workloads::MmoWorkload;
using workloads::OpKindName;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

MmoConfig BenchConfig(int sessions, uint64_t ops) {
  MmoConfig cfg;
  cfg.seed = 20260807;
  cfg.sessions = sessions;
  cfg.ops_per_session = ops;
  cfg.players = 64;
  cfg.guilds = 8;
  return cfg;
}

std::unique_ptr<core::Prima> OpenMmoDb(const MmoConfig& cfg, bool wire) {
  core::PrimaOptions options;
  options.storage.buffer_bytes = 32u << 20;
  if (wire) {
    options.listen_port = 0;
    options.net_max_connections = static_cast<uint32_t>(cfg.sessions) + 8;
  }
  auto db = RequireR(core::Prima::Open(std::move(options)), "open");
  MmoWorkload workload(db.get());
  Require(workload.CreateSchema(), "mmo schema");
  Require(workload.Populate(cfg), "mmo populate");
  return db;
}

struct TierResult {
  workloads::MmoRunResult run;
  double wall_s = 0;
  uint64_t lock_conflicts = 0;
};

TierResult RunTier(core::Prima* db, const MmoConfig& cfg, bool wire) {
  const uint64_t conflicts_before = db->stats().txn.lock_conflicts;
  MmoDriver driver =
      wire ? MmoDriver("127.0.0.1", db->net_server()->port(), cfg)
           : MmoDriver(db, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  TierResult r;
  r.run = RequireR(driver.Run(), "mmo run");
  r.wall_s = SecondsSince(t0);
  r.lock_conflicts = db->stats().txn.lock_conflicts - conflicts_before;

  // The storm is only a benchmark if it was also correct: audit the final
  // state against the oracle's shadow before reporting numbers.
  MmoOracle oracle(cfg);
  oracle.AdoptShadow(driver.shadow());
  Require(oracle.Audit(db), "oracle audit");
  return r;
}

void PrintTier(const char* transport, const MmoConfig& cfg,
               const TierResult& r) {
  const uint64_t total_ops = r.run.ops_acked + r.run.ops_aborted;
  std::printf("  %-10s %2d sessions: %8.0f ops/s   %6llu ops   "
              "%5llu retries   %5llu conflicts\n",
              transport, cfg.sessions, total_ops / r.wall_s,
              static_cast<unsigned long long>(total_ops),
              static_cast<unsigned long long>(r.run.retries),
              static_cast<unsigned long long>(r.lock_conflicts));
  std::printf("    %-14s %8s %10s %10s\n", "op", "count", "p50 (us)",
              "p99 (us)");
  for (int k = 0; k < workloads::kOpKinds; ++k) {
    const auto& h = r.run.latency_us[k];
    if (h.count == 0) continue;
    std::printf("    %-14s %8llu %10llu %10llu\n",
                OpKindName(static_cast<workloads::OpKind>(k)),
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()));
  }
  std::printf("\n");
}

void ReportSessionTiers() {
  PrintHeader(
      "MMO storm — session tiers, in-process and over the wire",
      "each session runs its deterministic op mix (Zipfian hot rows) in "
      "explicit transactions via prepared statements; transient conflicts "
      "retry with bounded backoff; every tier is oracle-audited before its "
      "numbers are reported");

  const bool smoke = std::getenv("PRIMA_BENCH_SMOKE") != nullptr;
  const std::vector<int> tiers =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 32};
  const uint64_t ops = smoke ? 60 : 300;
  for (const bool wire : {false, true}) {
    for (const int sessions : tiers) {
      MmoConfig cfg = BenchConfig(sessions, ops);
      auto db = OpenMmoDb(cfg, wire);
      const TierResult r = RunTier(db.get(), cfg, wire);
      PrintTier(wire ? "wire" : "in-process", cfg, r);
    }
  }
}

void ReportRosterIsolation() {
  PrintHeader(
      "guild-roster molecule scan — latest-committed vs snapshot",
      "the roster query (guild-player-item FROM path) under the same write "
      "storm: latest-committed reads the newest state, snapshot pins a "
      "consistent view per cursor and never blocks on the writers");

  const bool smoke = std::getenv("PRIMA_BENCH_SMOKE") != nullptr;
  const int sessions = 8;
  const uint64_t ops = smoke ? 60 : 300;
  std::printf("  %-18s %10s %10s %10s %12s\n", "roster isolation", "scans",
              "p50 (us)", "p99 (us)", "ops/s total");
  for (const core::Isolation iso :
       {core::Isolation::kLatestCommitted, core::Isolation::kSnapshot}) {
    MmoConfig cfg = BenchConfig(sessions, ops);
    cfg.mix.roster_scan = 40;  // make the scan the headline op
    cfg.roster_isolation = iso;
    auto db = OpenMmoDb(cfg, /*wire=*/false);
    const TierResult r = RunTier(db.get(), cfg, /*wire=*/false);
    const auto& h =
        r.run.latency_us[static_cast<int>(workloads::OpKind::kRosterScan)];
    std::printf("  %-18s %10llu %10llu %10llu %12.0f\n",
                iso == core::Isolation::kSnapshot ? "snapshot"
                                                  : "latest-committed",
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()),
                (r.run.ops_acked + r.run.ops_aborted) / r.wall_s);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Microbenchmarks (the CI smoke filter exercises these too)
// ---------------------------------------------------------------------------

void BM_GuildRosterScan(benchmark::State& state) {
  MmoConfig cfg = BenchConfig(/*sessions=*/4, /*ops=*/50);
  auto db = OpenMmoDb(cfg, /*wire=*/false);
  // Give the rosters some members first.
  RequireR(MmoDriver(db.get(), cfg).Run(), "warm run");
  for (auto _ : state) {
    auto set = RequireR(
        db->Query("SELECT ALL FROM guild-player-item WHERE guild_no = 0"),
        "roster");
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuildRosterScan);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::ReportSessionTiers();
  prima::bench::ReportRosterIsolation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
