// Experiment E15 (paper §4): nested transactions as the generic control
// structure.
//
// Claims: (1) transactional bracketing adds bounded overhead per operation
// (locking + undo logging); (2) aborting a subtransaction compensates only
// its own subtree ("selective in-transaction recovery"); (3) lock
// inheritance lets children reuse ancestor locks without conflicts;
// (4) group commit lets concurrent committers share one log force — with
// the delay window, commits-per-force grows with the committer count and
// commit throughput beats the synchronous one-fsync-per-commit baseline;
// (5) with wal_max_bytes set, a checkpointed workload keeps the WAL file
// size bounded (circular log truncation).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "recovery/crash_device.h"
#include "storage/block_device.h"
#include "storage/wal.h"

namespace prima::bench {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

std::unique_ptr<core::Prima> MakeDb(int items) {
  auto db = OpenDb();
  Require(db->Execute("CREATE ATOM_TYPE part"
                      " ( part_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   name : CHAR_VAR,"
                      "   subs : SET_OF (REF_TO (part.supers)),"
                      "   supers : SET_OF (REF_TO (part.subs)) )"
                      " KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* part = db->access().catalog().FindAtomType("part");
  for (int i = 0; i < items; ++i) {
    RequireR(db->access().InsertAtom(part->id,
                                     {AttrValue{1, Value::Int(i)},
                                      AttrValue{2, Value::String("p")}}),
             "insert");
  }
  return db;
}

// ---------------------------------------------------------------------------
// Group commit + bounded WAL
// ---------------------------------------------------------------------------

/// In-memory device with a simulated fsync latency: deterministic stand-in
/// for a disk barrier, so the benefit of sharing forces is visible without
/// filesystem dependence.
class LatentSyncDevice : public storage::MemoryBlockDevice {
 public:
  explicit LatentSyncDevice(int sync_us) : sync_us_(sync_us) {}
  util::Status Sync() override {
    std::this_thread::sleep_for(std::chrono::microseconds(sync_us_));
    return util::Status::Ok();
  }

 private:
  const int sync_us_;
};

constexpr int kSimulatedFsyncUs = 200;

struct GroupCommitRun {
  double commits_per_sec = 0;
  double records_per_force = 0;
  double commits_per_force = 0;
};

GroupCommitRun RunCommitters(int threads, uint64_t delay_us,
                             int commits_per_thread) {
  auto device = std::make_shared<LatentSyncDevice>(kSimulatedFsyncUs);
  core::PrimaOptions options;
  options.device = device;
  options.commit_delay_us = delay_us;
  auto db = RequireR(core::Prima::Open(std::move(options)), "open");
  Require(db->Execute("CREATE ATOM_TYPE part"
                      " ( part_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   name : CHAR_VAR )"
                      " KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* part = db->access().catalog().FindAtomType("part");
  for (int i = 0; i < threads; ++i) {
    RequireR(db->access().InsertAtom(part->id,
                                     {AttrValue{1, Value::Int(i)},
                                      AttrValue{2, Value::String("p")}}),
             "insert");
  }
  auto atoms = db->access().AllAtoms(part->id);
  Require(db->Flush(), "checkpoint");

  const auto before = db->wal_stats();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> committers;
  committers.reserve(threads);
  std::atomic<int> failed{0};
  for (int t = 0; t < threads; ++t) {
    // Each committer updates its own atom: no lock conflicts, the only
    // shared resource is the log — exactly the commit-bound workload the
    // delay window targets.
    committers.emplace_back([&, t] {
      for (int i = 0; i < commits_per_thread; ++i) {
        auto txn = RequireR(db->Begin(), "begin");
        const auto st = txn->ModifyAtom(
            atoms[t], {AttrValue{2, Value::String("v" + std::to_string(i))}});
        if (!st.ok() || !txn->Commit().ok()) failed++;
      }
    });
  }
  for (auto& th : committers) th.join();
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  Require(failed.load() == 0 ? util::Status::Ok()
                             : util::Status::Aborted("commit failed"),
          "committers");
  const auto after = db->wal_stats();

  GroupCommitRun r;
  const uint64_t forces = after.forces - before.forces;
  const uint64_t records = after.records_forced - before.records_forced;
  const uint64_t commits = after.commits_forced - before.commits_forced;
  r.commits_per_sec =
      static_cast<double>(threads) * commits_per_thread / elapsed.count();
  r.records_per_force =
      forces == 0 ? 0.0 : static_cast<double>(records) / forces;
  r.commits_per_force =
      forces == 0 ? 0.0 : static_cast<double>(commits) / forces;
  return r;
}

void ReportGroupCommit() {
  PrintHeader(
      "WAL group commit — delay window + shared forces",
      "Claims: with concurrent committers one device write + fsync covers "
      "many commits (records-per-force > 1); commit throughput beats the "
      "synchronous one-fsync-per-commit baseline; a bounded WAL stays "
      "bounded under a checkpointed workload.");
  std::printf("simulated fsync latency: %d us\n\n", kSimulatedFsyncUs);

  constexpr int kCommits = 40;
  const GroupCommitRun solo = RunCommitters(1, 0, kCommits);
  const GroupCommitRun crowd = RunCommitters(8, 0, kCommits);
  const GroupCommitRun window = RunCommitters(8, 2 * kSimulatedFsyncUs, kCommits);
  std::printf("  %-34s %10.0f commits/s  %6.1f records/force  %5.2f commits/force\n",
              "1 committer (sync baseline):", solo.commits_per_sec,
              solo.records_per_force, solo.commits_per_force);
  std::printf("  %-34s %10.0f commits/s  %6.1f records/force  %5.2f commits/force\n",
              "8 committers, no delay window:", crowd.commits_per_sec,
              crowd.records_per_force, crowd.commits_per_force);
  std::printf("  %-34s %10.0f commits/s  %6.1f records/force  %5.2f commits/force\n",
              "8 committers, 400us delay window:", window.commits_per_sec,
              window.records_per_force, window.commits_per_force);
  std::printf("  speedup over sync baseline: %.2fx (no window), %.2fx (window)\n",
              crowd.commits_per_sec / solo.commits_per_sec,
              window.commits_per_sec / solo.commits_per_sec);

  // Bounded WAL: sustained checkpointed workload on a circular log.
  constexpr uint64_t kCap = 256u << 10;
  core::PrimaOptions options;
  options.wal_max_bytes = kCap;
  auto db = RequireR(core::Prima::Open(std::move(options)), "open bounded");
  Require(db->Execute("CREATE ATOM_TYPE part"
                      " ( part_id : IDENTIFIER, num : INTEGER,"
                      "   name : CHAR_VAR ) KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* part = db->access().catalog().FindAtomType("part");
  Require(db->Flush(), "checkpoint");
  uint64_t peak_footprint = 0;
  int commits = 0;
  while (db->wal()->append_lsn() < 3 * db->wal()->capacity_bytes()) {
    auto txn = RequireR(db->Begin(), "begin");
    RequireR(txn->InsertAtom(part->id,
                             {AttrValue{1, Value::Int(commits)},
                              AttrValue{2, Value::String("p")}}),
             "insert");
    Require(txn->Commit(), "commit");
    if (++commits % 10 == 0) {
      Require(db->Flush(), "checkpoint");
      peak_footprint = std::max(peak_footprint, db->wal_stats().footprint_bytes);
    }
  }
  const auto stats = db->wal_stats();
  std::printf(
      "\nbounded WAL (wal_max_bytes = %llu): %d commits, %llu log bytes "
      "appended\n  peak footprint = %llu bytes (%s cap), live tail = %llu "
      "bytes\n",
      static_cast<unsigned long long>(kCap), commits,
      static_cast<unsigned long long>(stats.bytes_appended),
      static_cast<unsigned long long>(peak_footprint),
      peak_footprint <= kCap ? "within" : "EXCEEDS",
      static_cast<unsigned long long>(stats.live_bytes));
}

void ReportMaintenance() {
  PrintHeader(
      "Maintenance daemon + log archiving + media recovery",
      "Claims: the checkpoint daemon lets a bounded-WAL workload issuing "
      "ZERO manual Flush() calls run to completion without NoSpace; "
      "recycled log blocks are archived before reuse; a destroyed data "
      "device is rebuilt from fuzzy backup + archived log + live WAL.");

  constexpr uint64_t kCap = 256u << 10;
  auto base = std::make_shared<storage::MemoryBlockDevice>();
  auto crash = std::make_shared<recovery::CrashingBlockDevice>(base);
  core::PrimaOptions options;
  options.device = crash;
  options.wal_max_bytes = kCap;  // daemon active at the default fraction
  options.wal_archive = true;
  auto db = RequireR(core::Prima::Open(std::move(options)), "open");
  Require(db->Execute("CREATE ATOM_TYPE part"
                      " ( part_id : IDENTIFIER, num : INTEGER,"
                      "   name : CHAR_VAR ) KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* part = db->access().catalog().FindAtomType("part");

  // Sustained workload, zero manual Flush(): checkpoint scheduling is the
  // daemon's job, with the commit NoSpace-poke as its safety net. A fuzzy
  // online backup is taken mid-stream, writers never pausing.
  int commits = 0;
  const auto start = std::chrono::steady_clock::now();
  while (db->wal()->append_lsn() < 3 * db->wal()->capacity_bytes()) {
    auto txn = RequireR(db->Begin(), "begin");
    RequireR(txn->InsertAtom(part->id,
                             {AttrValue{1, Value::Int(commits)},
                              AttrValue{2, Value::String("p")}}),
             "insert");
    Require(txn->Commit(), "commit (daemon should prevent NoSpace)");
    if (++commits == 100) {
      RequireR(db->Backup(), "fuzzy backup");
    }
  }
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start);
  const auto stats = db->wal_stats();
  const auto daemon_stats = db->checkpoint_daemon()->stats();
  std::printf(
      "bounded WAL %llu KB, %d commits, 0 manual Flush() calls, %.0f "
      "commits/s\n"
      "  auto checkpoints = %llu, NoSpace-poke checkpoints = %llu\n"
      "  archived = %llu KB, footprint = %llu KB (%s cap), "
      "oldest-active-txn LSN = %llu\n",
      static_cast<unsigned long long>(kCap >> 10), commits,
      commits / elapsed.count(),
      static_cast<unsigned long long>(stats.auto_checkpoints),
      static_cast<unsigned long long>(daemon_stats.requested_checkpoints),
      static_cast<unsigned long long>(stats.archived_bytes >> 10),
      static_cast<unsigned long long>(stats.footprint_bytes >> 10),
      stats.footprint_bytes <= kCap ? "within" : "EXCEEDS",
      static_cast<unsigned long long>(stats.oldest_active_lsn));

  // Media recovery: pull the plug, destroy every data segment, rebuild
  // from backup + archive + live WAL.
  crash->CrashNow();
  db.reset();
  for (storage::SegmentId id : base->ListFiles()) {
    if (!storage::IsReservedFileId(id)) {
      Require(base->Remove(id), "destroy data segment");
    }
  }
  core::PrimaOptions restore;
  restore.device = base;
  restore.wal_max_bytes = kCap;
  restore.restore_from_backup = true;
  const auto rec_start = std::chrono::steady_clock::now();
  auto rebuilt = RequireR(core::Prima::Open(std::move(restore)),
                          "media recovery");
  const auto rec_elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - rec_start);
  const auto* part2 = rebuilt->access().catalog().FindAtomType("part");
  const size_t atoms =
      part2 == nullptr ? 0 : rebuilt->access().AtomCount(part2->id);
  std::printf(
      "media recovery after device loss: %zu of %d committed atoms rebuilt "
      "in %.1f ms (%s)\n",
      atoms, commits, rec_elapsed.count() * 1e3,
      atoms == static_cast<size_t>(commits) ? "complete" : "INCOMPLETE");
}

void ReportParallelRecovery() {
  PrintHeader(
      "Parallel redo — timed restart + media rebuild, serial vs parallel",
      "Claims: the redo pass partitions page chains over the thread pool, "
      "so restart and device-rebuild time drop with cores while staying "
      "bit-identical to serial replay; this is the recovery-latency "
      "baseline for future PRs.");

  // Grow a crashed image whose redo window spans a multi-megabyte log:
  // unbounded WAL, one early checkpoint + fuzzy backup, then waves of
  // inserts and modifies that are never checkpointed again.
  auto base = std::make_shared<storage::MemoryBlockDevice>();
  auto crash = std::make_shared<recovery::CrashingBlockDevice>(base);
  core::PrimaOptions options;
  options.device = crash;
  auto db = RequireR(core::Prima::Open(std::move(options)), "open");
  Require(db->Execute("CREATE ATOM_TYPE part"
                      " ( part_id : IDENTIFIER, num : INTEGER,"
                      "   name : CHAR_VAR ) KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* part = db->access().catalog().FindAtomType("part");
  constexpr int kAtoms = 2000;
  constexpr int kModifyRounds = 4;
  std::vector<Tid> tids;
  tids.reserve(kAtoms);
  for (int i = 0; i < kAtoms; ++i) {
    tids.push_back(RequireR(
        db->access().InsertAtom(part->id, {AttrValue{1, Value::Int(i)},
                                           AttrValue{2, Value::String("p")}}),
        "insert"));
  }
  const auto backup = RequireR(db->Backup(), "fuzzy backup");
  for (int round = 0; round < kModifyRounds; ++round) {
    auto txn = RequireR(db->Begin(), "begin");
    for (int i = 0; i < kAtoms; ++i) {
      Require(txn->ModifyAtom(tids[i],
                              {AttrValue{2, Value::String(
                                             "r" + std::to_string(round) +
                                             "v" + std::to_string(i))}}),
              "modify");
    }
    Require(txn->Commit(), "commit");
  }
  const auto wal_stats = db->wal_stats();
  crash->CrashNow();
  db.reset();
  std::printf(
      "crashed image: %d atoms, %d modify rounds, %.1f MB log in the redo "
      "window (%.1f MB full-page images)\n\n",
      kAtoms, kModifyRounds,
      static_cast<double>(wal_stats.bytes_appended) / (1 << 20),
      static_cast<double>(wal_stats.full_page_image_bytes) / (1 << 20));

  // Restart recovery over CLONES of the same crashed bytes, serial first.
  const size_t hw = util::ThreadPool::DefaultThreads();
  std::vector<size_t> fanouts{1, 2, 4, hw};
  std::sort(fanouts.begin(), fanouts.end());
  fanouts.erase(std::unique(fanouts.begin(), fanouts.end()), fanouts.end());
  double serial_restart_ms = 0;
  for (size_t threads : fanouts) {
    core::PrimaOptions o;
    o.device = std::shared_ptr<storage::BlockDevice>(base->Clone());
    o.recovery_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    auto recovered = RequireR(core::Prima::Open(std::move(o)), "restart");
    const double ms = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count() *
                      1e3;
    const auto stats = recovered->wal_stats();
    const auto* part2 = recovered->access().catalog().FindAtomType("part");
    Require(part2 != nullptr &&
                    recovered->access().AtomCount(part2->id) ==
                        static_cast<size_t>(kAtoms)
                ? util::Status::Ok()
                : util::Status::Corruption("atom count mismatch"),
            "recovered state");
    if (threads == 1) serial_restart_ms = ms;
    std::printf(
        "  restart, %2zu thread(s): %7.1f ms  (%llu redo records, %.2fx vs "
        "serial)\n",
        threads, ms,
        static_cast<unsigned long long>(stats.redo_records_applied),
        serial_restart_ms / ms);
  }

  // Media rebuild: data segments destroyed, restore from the fuzzy backup
  // and replay the same window — the same parallel apply phase.
  std::printf("\n");
  double serial_rebuild_ms = 0;
  for (size_t threads : {size_t{1}, hw}) {
    auto clone = std::shared_ptr<storage::MemoryBlockDevice>(base->Clone());
    for (storage::SegmentId id : clone->ListFiles()) {
      if (!storage::IsReservedFileId(id)) {
        Require(clone->Remove(id), "destroy data segment");
      }
    }
    core::PrimaOptions o;
    o.device = clone;
    o.restore_from_backup = true;
    o.recovery_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    auto rebuilt = RequireR(core::Prima::Open(std::move(o)), "media rebuild");
    const double ms = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count() *
                      1e3;
    const auto* part2 = rebuilt->access().catalog().FindAtomType("part");
    Require(part2 != nullptr &&
                    rebuilt->access().AtomCount(part2->id) ==
                        static_cast<size_t>(kAtoms)
                ? util::Status::Ok()
                : util::Status::Corruption("atom count mismatch"),
            "rebuilt state");
    if (threads == 1) serial_rebuild_ms = ms;
    std::printf(
        "  media rebuild from backup (start LSN %llu), %2zu thread(s): "
        "%7.1f ms  (%.2fx vs serial)\n",
        static_cast<unsigned long long>(backup.start_lsn), threads, ms,
        serial_rebuild_ms / ms);
  }
}

void Report() {
  PrintHeader("E15 / §4 — nested transactions",
              "Claims: bounded per-op overhead; subtree aborts undo only the "
              "subtree; ancestors' locks are usable by children.");
  auto db = MakeDb(100);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);

  // Selective recovery demonstration.
  auto txn = RequireR(db->Begin(), "begin");
  Require(txn->ModifyAtom(atoms[0], {AttrValue{2, Value::String("parent")}}),
          "parent modify");
  auto child = RequireR(txn->BeginChild(), "child");
  Require(child->ModifyAtom(atoms[1], {AttrValue{2, Value::String("child")}}),
          "child modify");
  const size_t parent_undo = txn->undo_size();
  const size_t child_undo = child->undo_size();
  Require(child->Abort(), "child abort");
  auto a0 = RequireR(db->access().GetAtom(atoms[0]), "a0");
  auto a1 = RequireR(db->access().GetAtom(atoms[1]), "a1");
  std::printf("selective in-transaction recovery:\n");
  std::printf("  parent undo entries: %zu, child undo entries: %zu\n",
              parent_undo, child_undo);
  std::printf("  after child abort: atom0 = %s (parent change kept), "
              "atom1 = %s (child change undone)\n",
              a0.attrs[2].AsString().c_str(), a1.attrs[2].AsString().c_str());
  Require(txn->Commit(), "commit");

  // Conflict + inheritance shape.
  auto t1 = RequireR(db->Begin(), "t1");
  auto t2 = RequireR(db->Begin(), "t2");
  Require(t1->ModifyAtom(atoms[2], {AttrValue{2, Value::String("x")}}), "m");
  const auto conflict =
      t2->ModifyAtom(atoms[2], {AttrValue{2, Value::String("y")}});
  auto t1child = RequireR(t1->BeginChild(), "t1 child");
  const auto inherited =
      t1child->ModifyAtom(atoms[2], {AttrValue{2, Value::String("z")}});
  std::printf("\nlock rules (Moss):\n");
  std::printf("  sibling write-write        -> %s\n",
              conflict.IsConflict() ? "Conflict (correct)" : "UNEXPECTED");
  std::printf("  child under ancestor lock  -> %s\n",
              inherited.ok() ? "granted (correct)" : inherited.ToString().c_str());
  Require(t1child->Commit(), "cc");
  Require(t1->Commit(), "c1");
  Require(t2->Commit(), "c2");
}

void BM_ModifyNoTransaction(benchmark::State& state) {
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  size_t i = 0;
  for (auto _ : state) {
    Require(db->access().ModifyAtom(
                atoms[i++ % atoms.size()],
                {AttrValue{2, Value::String("v" + std::to_string(i))}}),
            "modify");
  }
}
BENCHMARK(BM_ModifyNoTransaction);

void BM_ModifyInTransaction(benchmark::State& state) {
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  size_t i = 0;
  for (auto _ : state) {
    auto txn = RequireR(db->Begin(), "begin");
    Require(txn->ModifyAtom(
                atoms[i++ % atoms.size()],
                {AttrValue{2, Value::String("v" + std::to_string(i))}}),
            "modify");
    Require(txn->Commit(), "commit");
  }
}
BENCHMARK(BM_ModifyInTransaction);

void BM_AbortCost(benchmark::State& state) {
  // Undo application scales with the number of logged operations.
  const int ops = static_cast<int>(state.range(0));
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  for (auto _ : state) {
    auto txn = RequireR(db->Begin(), "begin");
    for (int i = 0; i < ops; ++i) {
      Require(txn->ModifyAtom(
                  atoms[i % atoms.size()],
                  {AttrValue{2, Value::String("v" + std::to_string(i))}}),
              "modify");
    }
    Require(txn->Abort(), "abort");
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_AbortCost)->Arg(1)->Arg(10)->Arg(100);

void BM_NestedCommitChain(benchmark::State& state) {
  // Depth of the transaction tree: commit inheritance cost per level.
  const int depth = static_cast<int>(state.range(0));
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  size_t i = 0;
  for (auto _ : state) {
    auto root = RequireR(db->Begin(), "begin");
    core::Transaction* current = root;
    std::vector<core::Transaction*> chain{root};
    for (int d = 0; d < depth; ++d) {
      current = RequireR(current->BeginChild(), "child");
      chain.push_back(current);
      Require(current->ModifyAtom(
                  atoms[i++ % atoms.size()],
                  {AttrValue{2, Value::String("d" + std::to_string(d))}}),
              "modify");
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      Require((*it)->Commit(), "commit");
    }
  }
}
BENCHMARK(BM_NestedCommitChain)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  prima::bench::ReportGroupCommit();
  prima::bench::ReportMaintenance();
  prima::bench::ReportParallelRecovery();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
