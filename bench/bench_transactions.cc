// Experiment E15 (paper §4): nested transactions as the generic control
// structure.
//
// Claims: (1) transactional bracketing adds bounded overhead per operation
// (locking + undo logging); (2) aborting a subtransaction compensates only
// its own subtree ("selective in-transaction recovery"); (3) lock
// inheritance lets children reuse ancestor locks without conflicts.

#include "bench_common.h"

namespace prima::bench {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

std::unique_ptr<core::Prima> MakeDb(int items) {
  auto db = OpenDb();
  Require(db->Execute("CREATE ATOM_TYPE part"
                      " ( part_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   name : CHAR_VAR,"
                      "   subs : SET_OF (REF_TO (part.supers)),"
                      "   supers : SET_OF (REF_TO (part.subs)) )"
                      " KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* part = db->access().catalog().FindAtomType("part");
  for (int i = 0; i < items; ++i) {
    RequireR(db->access().InsertAtom(part->id,
                                     {AttrValue{1, Value::Int(i)},
                                      AttrValue{2, Value::String("p")}}),
             "insert");
  }
  return db;
}

void Report() {
  PrintHeader("E15 / §4 — nested transactions",
              "Claims: bounded per-op overhead; subtree aborts undo only the "
              "subtree; ancestors' locks are usable by children.");
  auto db = MakeDb(100);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);

  // Selective recovery demonstration.
  auto txn = RequireR(db->Begin(), "begin");
  Require(txn->ModifyAtom(atoms[0], {AttrValue{2, Value::String("parent")}}),
          "parent modify");
  auto child = RequireR(txn->BeginChild(), "child");
  Require(child->ModifyAtom(atoms[1], {AttrValue{2, Value::String("child")}}),
          "child modify");
  const size_t parent_undo = txn->undo_size();
  const size_t child_undo = child->undo_size();
  Require(child->Abort(), "child abort");
  auto a0 = RequireR(db->access().GetAtom(atoms[0]), "a0");
  auto a1 = RequireR(db->access().GetAtom(atoms[1]), "a1");
  std::printf("selective in-transaction recovery:\n");
  std::printf("  parent undo entries: %zu, child undo entries: %zu\n",
              parent_undo, child_undo);
  std::printf("  after child abort: atom0 = %s (parent change kept), "
              "atom1 = %s (child change undone)\n",
              a0.attrs[2].AsString().c_str(), a1.attrs[2].AsString().c_str());
  Require(txn->Commit(), "commit");

  // Conflict + inheritance shape.
  auto t1 = RequireR(db->Begin(), "t1");
  auto t2 = RequireR(db->Begin(), "t2");
  Require(t1->ModifyAtom(atoms[2], {AttrValue{2, Value::String("x")}}), "m");
  const auto conflict =
      t2->ModifyAtom(atoms[2], {AttrValue{2, Value::String("y")}});
  auto t1child = RequireR(t1->BeginChild(), "t1 child");
  const auto inherited =
      t1child->ModifyAtom(atoms[2], {AttrValue{2, Value::String("z")}});
  std::printf("\nlock rules (Moss):\n");
  std::printf("  sibling write-write        -> %s\n",
              conflict.IsConflict() ? "Conflict (correct)" : "UNEXPECTED");
  std::printf("  child under ancestor lock  -> %s\n",
              inherited.ok() ? "granted (correct)" : inherited.ToString().c_str());
  Require(t1child->Commit(), "cc");
  Require(t1->Commit(), "c1");
  Require(t2->Commit(), "c2");
}

void BM_ModifyNoTransaction(benchmark::State& state) {
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  size_t i = 0;
  for (auto _ : state) {
    Require(db->access().ModifyAtom(
                atoms[i++ % atoms.size()],
                {AttrValue{2, Value::String("v" + std::to_string(i))}}),
            "modify");
  }
}
BENCHMARK(BM_ModifyNoTransaction);

void BM_ModifyInTransaction(benchmark::State& state) {
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  size_t i = 0;
  for (auto _ : state) {
    auto txn = RequireR(db->Begin(), "begin");
    Require(txn->ModifyAtom(
                atoms[i++ % atoms.size()],
                {AttrValue{2, Value::String("v" + std::to_string(i))}}),
            "modify");
    Require(txn->Commit(), "commit");
  }
}
BENCHMARK(BM_ModifyInTransaction);

void BM_AbortCost(benchmark::State& state) {
  // Undo application scales with the number of logged operations.
  const int ops = static_cast<int>(state.range(0));
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  for (auto _ : state) {
    auto txn = RequireR(db->Begin(), "begin");
    for (int i = 0; i < ops; ++i) {
      Require(txn->ModifyAtom(
                  atoms[i % atoms.size()],
                  {AttrValue{2, Value::String("v" + std::to_string(i))}}),
              "modify");
    }
    Require(txn->Abort(), "abort");
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_AbortCost)->Arg(1)->Arg(10)->Arg(100);

void BM_NestedCommitChain(benchmark::State& state) {
  // Depth of the transaction tree: commit inheritance cost per level.
  const int depth = static_cast<int>(state.range(0));
  auto db = MakeDb(200);
  const auto* part = db->access().catalog().FindAtomType("part");
  auto atoms = db->access().AllAtoms(part->id);
  size_t i = 0;
  for (auto _ : state) {
    auto root = RequireR(db->Begin(), "begin");
    core::Transaction* current = root;
    std::vector<core::Transaction*> chain{root};
    for (int d = 0; d < depth; ++d) {
      current = RequireR(current->BeginChild(), "child");
      chain.push_back(current);
      Require(current->ModifyAtom(
                  atoms[i++ % atoms.size()],
                  {AttrValue{2, Value::String("d" + std::to_string(d))}}),
              "modify");
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      Require((*it)->Commit(), "commit");
    }
  }
}
BENCHMARK(BM_NestedCommitChain)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
