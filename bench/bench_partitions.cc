// Experiment E13 (paper §3.2): partitions — separate storage of attribute
// combinations.
//
// Claim: "the projection of frequently used attributes may be supported by
// means of partitions"; an attribute-selective read served from a partition
// moves fewer bytes (and touches smaller pages) than reading the full
// record.

#include "bench_common.h"

namespace prima::bench {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

constexpr int kItems = 1000;
constexpr int kBlobBytes = 600;  // fat payload the projection never needs

std::unique_ptr<core::Prima> MakeDb(bool with_partition) {
  auto db = OpenDb();
  Require(db->Execute("CREATE ATOM_TYPE doc"
                      " ( doc_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   title : CHAR_VAR,"
                      "   body : CHAR_VAR )"
                      " KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* doc = db->access().catalog().FindAtomType("doc");
  for (int i = 0; i < kItems; ++i) {
    RequireR(db->access().InsertAtom(
                 doc->id,
                 {AttrValue{1, Value::Int(i)},
                  AttrValue{2, Value::String("t" + std::to_string(i))},
                  AttrValue{3, Value::String(std::string(kBlobBytes, 'b'))}}),
             "insert");
  }
  if (with_partition) {
    RequireR(db->ExecuteLdl("CREATE PARTITION titles ON doc (title)"), "ldl");
  }
  return db;
}

void Report() {
  PrintHeader("E13 / §3.2 — partitions collect the results of projections",
              "Claim: a covered projection reads the small partition record "
              "instead of the full atom image.");
  auto plain = MakeDb(false);
  auto part = MakeDb(true);

  const auto* doc = plain->access().catalog().FindAtomType("doc");
  auto atoms_plain = plain->access().AllAtoms(doc->id);
  auto atoms_part = part->access().AllAtoms(doc->id);

  // Count device traffic for a cold projection sweep.
  auto cold_sweep = [&](core::Prima* db, const std::vector<Tid>& atoms) {
    Require(db->Flush(), "flush");
    for (storage::SegmentId seg : db->storage().ListSegments()) {
      Require(db->storage().buffer().Discard(seg), "discard");
    }
    db->storage().device().stats().Reset();
    for (const Tid& t : atoms) {
      auto atom = db->access().GetAtom(t, {2});  // project title only
      Require(atom.status(), "get");
    }
    return db->storage().device().stats().blocks_read.load() *
           0;  // replaced below
  };
  (void)cold_sweep;

  auto sweep_bytes = [&](core::Prima* db, const std::vector<Tid>& atoms) {
    Require(db->Flush(), "flush");
    for (storage::SegmentId seg : db->storage().ListSegments()) {
      Require(db->storage().buffer().Discard(seg), "discard");
    }
    db->storage().device().stats().Reset();
    for (const Tid& t : atoms) {
      auto atom = db->access().GetAtom(t, {2});
      Require(atom.status(), "get");
    }
    const auto& stats = db->storage().device().stats();
    return std::make_pair(stats.TotalOps(), stats.blocks_read.load());
  };
  const auto [plain_ops, plain_blocks] = sweep_bytes(plain.get(), atoms_plain);
  const auto [part_ops, part_blocks] = sweep_bytes(part.get(), atoms_part);

  std::printf("cold projection sweep of %d atoms (title only):\n\n", kItems);
  std::printf("%-26s %14s %14s %16s\n", "storage", "device ops", "blocks read",
              "partition reads");
  std::printf("%-26s %14llu %14llu %16s\n", "base records only",
              (unsigned long long)plain_ops, (unsigned long long)plain_blocks,
              "0");
  std::printf("%-26s %14llu %14llu %16llu\n", "title partition",
              (unsigned long long)part_ops, (unsigned long long)part_blocks,
              (unsigned long long)part->access().stats().partition_reads.load());
  std::printf("\nblock-read reduction: %.1fx (partition pages are 1K and hold "
              "many more records)\n",
              double(plain_blocks) / double(part_blocks ? part_blocks : 1));
}

void BM_ProjectedRead(benchmark::State& state) {
  const bool with_partition = state.range(0) != 0;
  auto db = MakeDb(with_partition);
  const auto* doc = db->access().catalog().FindAtomType("doc");
  auto atoms = db->access().AllAtoms(doc->id);
  size_t i = 0;
  for (auto _ : state) {
    auto atom = db->access().GetAtom(atoms[i++ % atoms.size()], {2});
    Require(atom.status(), "get");
    benchmark::DoNotOptimize(*atom);
  }
  state.counters["partition_reads"] = static_cast<double>(
      db->access().stats().partition_reads.load());
}
BENCHMARK(BM_ProjectedRead)->Arg(0)->Name("BM_ProjectedRead_BaseOnly");
BENCHMARK(BM_ProjectedRead)->Arg(1)->Name("BM_ProjectedRead_Partition");

void BM_FullRead(benchmark::State& state) {
  // Control: unprojected reads must not regress with a partition installed.
  auto db = MakeDb(true);
  const auto* doc = db->access().catalog().FindAtomType("doc");
  auto atoms = db->access().AllAtoms(doc->id);
  size_t i = 0;
  for (auto _ : state) {
    auto atom = db->access().GetAtom(atoms[i++ % atoms.size()]);
    Require(atom.status(), "get");
    benchmark::DoNotOptimize(*atom);
  }
}
BENCHMARK(BM_FullRead);

void BM_PartitionMaintenanceCost(benchmark::State& state) {
  // The price of the redundancy: updates to partitioned attributes.
  const bool touch_partitioned = state.range(0) != 0;
  auto db = MakeDb(true);
  const auto* doc = db->access().catalog().FindAtomType("doc");
  auto atoms = db->access().AllAtoms(doc->id);
  size_t i = 0;
  for (auto _ : state) {
    const uint16_t attr = touch_partitioned ? 2 : 3;
    Require(db->access().ModifyAtom(
                atoms[i++ % atoms.size()],
                {AttrValue{attr, Value::String("v" + std::to_string(i))}}),
            "modify");
  }
  Require(db->access().DrainAll(), "drain");
}
BENCHMARK(BM_PartitionMaintenanceCost)
    ->Arg(1)
    ->Name("BM_Modify_PartitionedAttr");
BENCHMARK(BM_PartitionMaintenanceCost)
    ->Arg(0)
    ->Name("BM_Modify_UnpartitionedAttr");

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
