// Experiment E14 (paper §4): semantic parallelism inside one user
// operation.
//
// Claim: engineering operations on complex objects carry "substantial
// portions of inherent parallelism"; decomposing a single molecule-set
// derivation into conflict-free units of work (DUs) and executing them
// concurrently speeds the operation up, with identical results.

#include "bench_common.h"

namespace prima::bench {
namespace {

constexpr int kSolids = 96;
const char* kQuery = "SELECT ALL FROM brep-face-edge-point";

std::unique_ptr<core::Prima> MakeDb(size_t workers) {
  core::PrimaOptions options;
  options.parallel_workers = workers;
  options.storage.buffer_bytes = 64u << 20;
  auto db = RequireR(core::Prima::Open(options), "open");
  workloads::BrepWorkload brep(db.get());
  Require(brep.CreateSchema(), "schema");
  RequireR(brep.BuildMany(1000, kSolids), "data");
  return db;
}

void Report() {
  PrintHeader("E14 / §4 — semantic parallelism in one user operation",
              "Claim: decomposed units of work (conflict-free by "
              "decomposition) execute concurrently; the molecule set is "
              "identical to serial execution and wall time drops.");

  // One database per configuration, pool sized to the DU count — the
  // shared-memory stand-in for "a multi-processor PRIMA with N processors".
  // A CPU-weighted qualification exposes the inherent parallelism the paper
  // targets (molecule derivation + predicate evaluation per DU).
  const std::string query =
      "SELECT ALL FROM brep-face-edge-point WHERE "
      "EXISTS_AT_LEAST (2) face: (face.square_dim > 0.1 AND "
      "EXISTS_AT_LEAST (3) edge: (edge.length > 0.1 AND "
      "FOR_ALL point: point.placement.x_coord >= 0.0))";

  constexpr int kReps = 8;
  auto best_of = [&](auto&& fn) {
    double best = 1e18;
    for (int r = 0; r < kReps; ++r) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      const auto end = std::chrono::steady_clock::now();
      best = std::min(
          best, std::chrono::duration<double, std::milli>(end - start).count());
    }
    return best;
  };

  auto serial_db = MakeDb(2);
  RequireR(serial_db->Query(query), "warmup");
  size_t serial_size = 0;
  const double serial_ms = best_of([&] {
    auto set = RequireR(serial_db->Query(query), "serial");
    serial_size = set.size();
  });

  std::printf("%-10s %12s %12s %10s\n", "DUs", "time [ms]", "speedup",
              "molecules");
  std::printf("%-10s %12.2f %12s %10zu\n", "serial", serial_ms, "1.00x",
              serial_size);
  for (size_t units : {2, 4, 8, 16}) {
    auto db = MakeDb(units);
    RequireR(db->QueryParallel(query, units), "warmup");
    size_t parallel_size = 0;
    const double msec = best_of([&] {
      auto set = RequireR(db->QueryParallel(query, units), "parallel");
      parallel_size = set.size();
    });
    std::printf("%-10zu %12.2f %11.2fx %10zu%s\n", units, msec,
                serial_ms / msec, parallel_size,
                parallel_size == serial_size ? "" : "  RESULT MISMATCH!");
  }
}

void BM_Serial(benchmark::State& state) {
  auto db = MakeDb(2);
  RequireR(db->Query(kQuery), "warmup");
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQuery), "q");
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * kSolids);
}
BENCHMARK(BM_Serial);

void BM_Parallel(benchmark::State& state) {
  auto db = MakeDb(static_cast<size_t>(state.range(0)));
  RequireR(db->Query(kQuery), "warmup");
  for (auto _ : state) {
    auto set = RequireR(db->QueryParallel(kQuery, state.range(0)), "q");
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * kSolids);
}
BENCHMARK(BM_Parallel)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Parallel_WithQualification(benchmark::State& state) {
  // DUs also evaluate the WHERE clause concurrently.
  auto db = MakeDb(8);
  const std::string query =
      "SELECT ALL FROM brep-face-edge-point WHERE "
      "EXISTS_AT_LEAST (2) face: face.square_dim > 3.0";
  RequireR(db->Query(query), "warmup");
  for (auto _ : state) {
    auto set = RequireR(db->QueryParallel(query, 8), "q");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_Parallel_WithQualification);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
