// Experiment E9 (paper Fig. 3.2): atom clusters — the molecule materialized
// as one physical record on a page sequence.
//
// Claim: "in order to speed up construction of frequently used molecules"
// the cluster allocates all atoms of the molecule's main lanes in physical
// contiguity; a page sequence transfers with one chained I/O. Without the
// cluster, assembly chases associations atom by atom (one random page
// access each on a cold buffer).

#include "bench_common.h"

namespace prima::bench {
namespace {

constexpr int kSolids = 64;
const char* kQuery = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = ";

std::unique_ptr<core::Prima> MakeDb(bool with_cluster, size_t buffer_bytes) {
  // Small base pages model the paper's setting: molecule atoms scatter over
  // many pages, so association chasing pays one page access per hop.
  core::PrimaOptions options;
  options.storage.buffer_bytes = buffer_bytes;
  options.access.base_page_size = storage::PageSize::k512;
  auto db = RequireR(core::Prima::Open(options), "open");
  workloads::BrepWorkload brep(db.get());
  Require(brep.CreateSchema(), "schema");
  RequireR(brep.BuildMany(1700, kSolids), "data");
  if (with_cluster) {
    RequireR(db->ExecuteLdl(
                 "CREATE ATOM CLUSTER brep_cl ON brep (faces, edges, points)"),
             "cluster");
  }
  Require(db->Flush(), "flush");
  return db;
}

/// Device operations for one cold molecule construction.
uint64_t ColdOps(core::Prima* db, int64_t brep_no) {
  // Empty the buffer: discard every segment's pages.
  for (storage::SegmentId seg : db->storage().ListSegments()) {
    Require(db->storage().buffer().Discard(seg), "discard");
  }
  db->storage().device().stats().Reset();
  auto set = RequireR(db->Query(kQuery + std::to_string(brep_no)), "query");
  if (set.size() != 1 || set.molecules[0].AtomCount() != 15) {
    std::fprintf(stderr, "unexpected molecule shape\n");
    std::abort();
  }
  return db->storage().device().stats().TotalOps();
}

void Report() {
  PrintHeader("E9 / Fig. 3.2 — atom cluster: molecule as one page sequence",
              "Claim: with the cluster the whole molecule arrives with one "
              "chained I/O (plus the lookup); without it, every atom costs "
              "a random page access on a cold buffer.");

  auto plain = MakeDb(false, 4u << 20);
  auto clustered = MakeDb(true, 4u << 20);

  // Average cold-construction device cost over several molecules.
  uint64_t plain_ops = 0, cluster_ops = 0;
  const int kTrials = 8;
  for (int i = 0; i < kTrials; ++i) {
    plain_ops += ColdOps(plain.get(), 1700 + i);
    cluster_ops += ColdOps(clustered.get(), 1700 + i);
  }
  std::printf("%-30s %18s %18s\n", "construction path", "device ops/molecule",
              "chained reads");
  std::printf("%-30s %18.1f %18s\n", "association chasing (no cluster)",
              double(plain_ops) / kTrials, "0");
  std::printf("%-30s %18.1f %18s\n", "atom cluster (page sequence)",
              double(cluster_ops) / kTrials, "1 per molecule");
  std::printf("\nI/O reduction factor: %.1fx (paper: 'speed up construction "
              "of frequently used molecules')\n",
              double(plain_ops) / double(cluster_ops == 0 ? 1 : cluster_ops));

  // The logical view (Fig. 3.2a): the characteristic atom references all
  // member atoms grouped by type.
  auto image = RequireR(
      clustered->access().ReadCluster(
          clustered->access().catalog().FindStructure("brep_cl")->id,
          clustered->access().AllAtoms(
              clustered->access().catalog().FindAtomType("brep")->id)[0]),
      "cluster image");
  std::printf("\ncluster image of one brep molecule (Fig. 3.2a):\n");
  std::printf("  characteristic atom: brep%s\n",
              image.characteristic.tid.ToString().c_str());
  for (const auto& [type, atoms] : image.groups) {
    std::printf("  member group: %s x %zu\n",
                clustered->access().catalog().GetAtomType(type)->name.c_str(),
                atoms.size());
  }
}

void BM_MoleculeConstruction_NoCluster_Warm(benchmark::State& state) {
  auto db = MakeDb(false, 16u << 20);
  int64_t i = 0;
  for (auto _ : state) {
    auto set = RequireR(
        db->Query(kQuery + std::to_string(1700 + (i++ % kSolids))), "q");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_MoleculeConstruction_NoCluster_Warm);

void BM_MoleculeConstruction_Cluster_Warm(benchmark::State& state) {
  auto db = MakeDb(true, 16u << 20);
  int64_t i = 0;
  for (auto _ : state) {
    auto set = RequireR(
        db->Query(kQuery + std::to_string(1700 + (i++ % kSolids))), "q");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_MoleculeConstruction_Cluster_Warm);

void BM_MoleculeConstruction_NoCluster_Cold(benchmark::State& state) {
  auto db = MakeDb(false, 4u << 20);
  int64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (storage::SegmentId seg : db->storage().ListSegments()) {
      Require(db->storage().buffer().Discard(seg), "discard");
    }
    state.ResumeTiming();
    auto set = RequireR(
        db->Query(kQuery + std::to_string(1700 + (i++ % kSolids))), "q");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_MoleculeConstruction_NoCluster_Cold);

void BM_MoleculeConstruction_Cluster_Cold(benchmark::State& state) {
  auto db = MakeDb(true, 4u << 20);
  int64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (storage::SegmentId seg : db->storage().ListSegments()) {
      Require(db->storage().buffer().Discard(seg), "discard");
    }
    state.ResumeTiming();
    auto set = RequireR(
        db->Query(kQuery + std::to_string(1700 + (i++ % kSolids))), "q");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_MoleculeConstruction_Cluster_Cold);

void BM_ClusterMaintenance_MemberModify(benchmark::State& state) {
  // The cost of the redundancy: modifying a member atom re-materializes the
  // cluster (deferred until the next cluster read).
  auto db = MakeDb(true, 16u << 20);
  const auto* face = db->access().catalog().FindAtomType("face");
  auto faces = db->access().AllAtoms(face->id);
  size_t i = 0;
  double v = 1.0;
  for (auto _ : state) {
    Require(db->access().ModifyAtom(
                faces[i++ % faces.size()],
                {access::AttrValue{1, access::Value::Real(v += 0.1)}}),
            "modify");
    Require(db->access().DrainAll(), "drain");
  }
}
BENCHMARK(BM_ClusterMaintenance_MemberModify);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
