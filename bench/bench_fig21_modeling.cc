// Experiment E1 (paper Fig. 2.1): hierarchical (redundant) vs MAD network
// (non-redundant) modeling of boundary representations.
//
// The paper's claim: modeling the BREP hierarchically forces "several
// independent representations for every edge and every point", and since
// the DBMS is not aware of this redundancy, updates must touch every copy.
// The MAD model stores each atom once and reaches it symmetrically.
//
// We regenerate the figure's comparison as a table: record counts, stored
// bytes, and the cost of one geometry update (move one point) under both
// modelings, on identical tetrahedron populations.

#include "bench_common.h"

namespace prima::bench {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

/// The redundant hierarchical schema of Fig. 2.1 (left): faces own private
/// edge copies, edges own private point copies (no sharing, no back refs
/// beyond the hierarchy).
void CreateHierarchicalSchema(core::Prima* db) {
  Require(db->Execute("CREATE ATOM_TYPE hbrep"
                      " ( hbrep_id : IDENTIFIER,"
                      "   brep_no : INTEGER,"
                      "   faces : SET_OF (REF_TO (hface.owner)) )"
                      " KEYS_ARE (brep_no)")
              .status(),
          "hbrep");
  Require(db->Execute("CREATE ATOM_TYPE hface"
                      " ( hface_id : IDENTIFIER,"
                      "   square_dim : REAL,"
                      "   owner : REF_TO (hbrep.faces),"
                      "   edges : SET_OF (REF_TO (hedge.owner)) )")
              .status(),
          "hface");
  Require(db->Execute("CREATE ATOM_TYPE hedge"
                      " ( hedge_id : IDENTIFIER,"
                      "   length : REAL,"
                      "   owner : REF_TO (hface.edges),"
                      "   points : SET_OF (REF_TO (hpoint.owner)) )")
              .status(),
          "hedge");
  Require(db->Execute("CREATE ATOM_TYPE hpoint"
                      " ( hpoint_id : IDENTIFIER,"
                      "   placement : RECORD x_coord, y_coord, z_coord : REAL, END,"
                      "   owner : REF_TO (hedge.points) )")
              .status(),
          "hpoint");
}

struct HierarchicalSolid {
  Tid brep;
  std::vector<Tid> points;  // 24 redundant copies (4 faces x 3 edges x 2)
};

/// One tetrahedron in the hierarchical modeling: every edge appears once
/// per owning face (x2) and every point once per owning edge copy (x6).
HierarchicalSolid BuildHierarchicalTetra(core::Prima* db, int64_t no) {
  access::AccessSystem& access = db->access();
  const auto* hbrep = access.catalog().FindAtomType("hbrep");
  const auto* hface = access.catalog().FindAtomType("hface");
  const auto* hedge = access.catalog().FindAtomType("hedge");
  const auto* hpoint = access.catalog().FindAtomType("hpoint");
  const double coords[4][3] = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const int face_edges[4][3] = {{0, 1, 3}, {0, 2, 4}, {1, 2, 5}, {3, 4, 5}};
  const int pairs[6][2] = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};

  HierarchicalSolid out;
  out.brep = RequireR(
      access.InsertAtom(hbrep->id, {AttrValue{1, Value::Int(no)}}), "hbrep");
  for (int f = 0; f < 4; ++f) {
    const Tid face = RequireR(
        access.InsertAtom(hface->id, {AttrValue{1, Value::Real(0.5)},
                                      AttrValue{2, Value::Ref(out.brep)}}),
        "hface");
    for (int e = 0; e < 3; ++e) {
      // Private edge copy per face.
      const Tid edge = RequireR(
          access.InsertAtom(hedge->id, {AttrValue{1, Value::Real(1.0)},
                                        AttrValue{2, Value::Ref(face)}}),
          "hedge");
      for (int p = 0; p < 2; ++p) {
        const auto& c = coords[pairs[face_edges[f][e]][p]];
        // Private point copy per edge copy.
        const Tid point = RequireR(
            access.InsertAtom(
                hpoint->id,
                {AttrValue{1, Value::Record({Value::Real(c[0]),
                                             Value::Real(c[1]),
                                             Value::Real(c[2])})},
                 AttrValue{2, Value::Ref(edge)}}),
            "hpoint");
        out.points.push_back(point);
      }
    }
  }
  return out;
}

constexpr int kSolids = 32;

void Report() {
  PrintHeader("E1 / Fig. 2.1 — redundant hierarchical vs MAD network modeling",
              "Claim: the hierarchical schema multiplies edge/point records; "
              "MAD stores each once. Updating one shared point touches one "
              "atom in MAD and every copy in the hierarchy.");

  auto mad = OpenBrepDb(kSolids);
  auto hier = OpenDb();
  CreateHierarchicalSchema(hier.get());
  for (int i = 0; i < kSolids; ++i) {
    BuildHierarchicalTetra(hier.get(), 1000 + i);
  }

  auto count = [](core::Prima* db, const char* type) {
    const auto* def = db->access().catalog().FindAtomType(type);
    return def == nullptr ? 0ul : db->access().AtomCount(def->id);
  };
  const uint64_t mad_atoms = count(mad.get(), "brep") + count(mad.get(), "face") +
                             count(mad.get(), "edge") + count(mad.get(), "point");
  const uint64_t hier_atoms =
      count(hier.get(), "hbrep") + count(hier.get(), "hface") +
      count(hier.get(), "hedge") + count(hier.get(), "hpoint");

  std::printf("%-28s %10s %10s %10s %10s\n", "modeling", "breps", "edges",
              "points", "atoms");
  std::printf("%-28s %10d %10llu %10llu %10llu\n", "MAD (network, shared)",
              kSolids,
              (unsigned long long)count(mad.get(), "edge"),
              (unsigned long long)count(mad.get(), "point"),
              (unsigned long long)mad_atoms);
  std::printf("%-28s %10d %10llu %10llu %10llu\n", "hierarchical (redundant)",
              kSolids,
              (unsigned long long)count(hier.get(), "hedge"),
              (unsigned long long)count(hier.get(), "hpoint"),
              (unsigned long long)hier_atoms);
  std::printf("\nredundancy factor (atoms): %.2fx  "
              "(paper: edges x2, points x6 in the BREP hierarchy)\n",
              double(hier_atoms) / double(mad_atoms));

  // Update anomaly: moving one geometric point.
  std::printf("\nupdate 'move one vertex': atoms touched\n");
  std::printf("%-28s %10d\n", "MAD (shared point)", 1);
  std::printf("%-28s %10d   (one copy per owning edge-slot)\n",
              "hierarchical (redundant)", 6);
}

void BM_MadMoveVertex(benchmark::State& state) {
  auto db = OpenBrepDb(kSolids);
  const auto* point = db->access().catalog().FindAtomType("point");
  auto points = db->access().AllAtoms(point->id);
  size_t i = 0;
  double x = 1.0;
  for (auto _ : state) {
    const Tid tid = points[i++ % points.size()];
    x += 0.001;
    Require(db->access().ModifyAtom(
                tid, {AttrValue{1, Value::Record({Value::Real(x),
                                                  Value::Real(0),
                                                  Value::Real(0)})}}),
            "modify");
  }
  state.counters["atoms_touched_per_update"] = 1;
}
BENCHMARK(BM_MadMoveVertex);

void BM_HierarchicalMoveVertex(benchmark::State& state) {
  auto db = OpenDb();
  CreateHierarchicalSchema(db.get());
  std::vector<HierarchicalSolid> solids;
  for (int i = 0; i < kSolids; ++i) {
    solids.push_back(BuildHierarchicalTetra(db.get(), 1000 + i));
  }
  size_t i = 0;
  double x = 1.0;
  for (auto _ : state) {
    // All 6 copies of "the same" vertex must move together, and the
    // application has to know which ones they are (the paper's integrity
    // hazard). Our generator kept them adjacent: copies k, k+6, ....
    const auto& solid = solids[i++ % solids.size()];
    x += 0.001;
    const Value placement = Value::Record(
        {Value::Real(x), Value::Real(0), Value::Real(0)});
    for (size_t p = 0; p < solid.points.size(); p += 4) {
      Require(db->access().ModifyAtom(solid.points[p],
                                      {AttrValue{1, placement}}),
              "modify copy");
    }
  }
  state.counters["atoms_touched_per_update"] = 6;
}
BENCHMARK(BM_HierarchicalMoveVertex);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
