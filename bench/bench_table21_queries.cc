// Experiments E4–E7 (paper Table 2.1): the four published query examples.
//
//   a) vertical access to network molecules (brep-face-edge-point, keyed)
//   b) vertical access to recursive molecules (piece_list, seed qualified)
//   c) horizontal access with unqualified projection (solid, sub = EMPTY)
//   d) branching FROM + quantifier + qualified projection
//
// The harness prints the molecule set each query produces (the paper shows
// only the statements; the shape claims are: a) selects exactly one
// 15-atom molecule via its key, b) expands level-stepwise, c) streams over
// the whole type, d) combines all restriction forms) and then times them.

#include "bench_common.h"

namespace prima::bench {
namespace {

constexpr int kSolids = 64;

std::unique_ptr<core::Prima> MakeDb() {
  auto db = OpenBrepDb(kSolids, 1700);
  workloads::BrepWorkload brep(db.get());
  RequireR(brep.BuildAssembly(4711, 3, 3), "assembly");  // 1+3+9+27 solids
  return db;
}

const char* kQueryA =
    "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713";
const char* kQueryB =
    "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 4711";
const char* kQueryC =
    "SELECT solid_no, description FROM solid WHERE sub = EMPTY";
const char* kQueryD =
    "SELECT edge, (point, face := SELECT face_id, square_dim FROM face "
    "WHERE square_dim > 5.0E0) "
    "FROM brep-edge (face, point) "
    "WHERE brep_no = 1713 AND "
    "EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0";

void Report() {
  PrintHeader("E4-E7 / Table 2.1 — the four published MQL queries",
              "Claim shapes: (a) one keyed molecule, 15 atoms; (b) stepwise "
              "recursion over the sub hierarchy; (c) set-oriented horizontal "
              "access; (d) quantifier + qualified projection compose.");
  auto db = MakeDb();

  struct Row {
    const char* id;
    const char* query;
  };
  const Row rows[] = {
      {"2.1a", kQueryA}, {"2.1b", kQueryB}, {"2.1c", kQueryC}, {"2.1d", kQueryD}};
  std::printf("%-6s %10s %12s %10s  %s\n", "query", "molecules", "atoms",
              "levels", "access");
  for (const Row& row : rows) {
    db->data().stats().Reset();
    auto set = RequireR(db->Query(row.query), row.id);
    size_t atoms = 0, levels = 0;
    for (const auto& m : set.molecules) {
      atoms += m.AtomCount();
      levels = std::max(levels, m.levels.size());
    }
    const auto& stats = db->data().stats();
    const char* access = stats.key_lookups.load() > 0      ? "key lookup"
                         : stats.access_path_scans.load() > 0 ? "access path"
                         : stats.grid_scans.load() > 0        ? "grid"
                                                              : "atom-type scan";
    std::printf("%-6s %10zu %12zu %10zu  %s\n", row.id, set.size(), atoms,
                levels, access);
  }
}

void BM_Table21a_VerticalAccess(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQueryA), "a");
    benchmark::DoNotOptimize(set);
  }
  state.counters["molecules"] = 1;
  state.counters["atoms"] = 15;
}
BENCHMARK(BM_Table21a_VerticalAccess);

void BM_Table21b_Recursion(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQueryB), "b");
    benchmark::DoNotOptimize(set);
  }
  state.counters["recursion_atoms"] = 40;  // 1+3+9+27
}
BENCHMARK(BM_Table21b_Recursion);

void BM_Table21c_HorizontalAccess(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQueryC), "c");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_Table21c_HorizontalAccess);

void BM_Table21d_Miscellaneous(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQueryD), "d");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_Table21d_Miscellaneous);

void BM_Table21a_ScalingDatabaseSize(benchmark::State& state) {
  // Keyed vertical access should be ~independent of database size.
  auto db = OpenBrepDb(static_cast<int>(state.range(0)), 1700);
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQueryA), "a");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_Table21a_ScalingDatabaseSize)->Arg(16)->Arg(64)->Arg(256);

void BM_Table21b_ScalingRecursionDepth(benchmark::State& state) {
  auto db = OpenBrepDb(4, 1700);
  workloads::BrepWorkload brep(db.get());
  RequireR(brep.BuildAssembly(4711, 2, static_cast<int>(state.range(0))),
           "assembly");
  for (auto _ : state) {
    auto set = RequireR(db->Query(kQueryB), "b");
    benchmark::DoNotOptimize(set);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Table21b_ScalingRecursionDepth)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
