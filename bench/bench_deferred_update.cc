// Experiment E12 (paper §3.2): deferred update of redundant structures.
//
// Claim: "to limit the amount of immediate overhead, deferred update is
// used, i.e., during an update operation only one physical record is
// modified whereas all others are modified later." The immediate update
// cost must therefore stay ~constant as redundant structures are added,
// while the eager policy pays per structure.

#include "bench_common.h"

namespace prima::bench {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

constexpr int kItems = 400;

std::unique_ptr<core::Prima> MakeDb(bool defer, int redundant_structures) {
  core::PrimaOptions options;
  options.access.defer_updates = defer;
  auto db = RequireR(core::Prima::Open(options), "open");
  Require(db->Execute("CREATE ATOM_TYPE item"
                      " ( item_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   weight : REAL,"
                      "   label : CHAR_VAR )"
                      " KEYS_ARE (num)")
              .status(),
          "schema");
  const auto* item = db->access().catalog().FindAtomType("item");
  for (int i = 0; i < kItems; ++i) {
    RequireR(db->access().InsertAtom(
                 item->id, {AttrValue{1, Value::Int(i)},
                            AttrValue{2, Value::Real(i * 1.5)},
                            AttrValue{3, Value::String("x")}}),
             "insert");
  }
  // 0..4 redundant structures over the mutable attribute.
  const char* ldl[] = {
      "CREATE SORT ORDER so1 ON item (weight)",
      "CREATE SORT ORDER so2 ON item (weight DESC)",
      "CREATE PARTITION p1 ON item (weight)",
      "CREATE PARTITION p2 ON item (weight, label)",
  };
  for (int s = 0; s < redundant_structures; ++s) {
    RequireR(db->ExecuteLdl(ldl[s]), "ldl");
  }
  return db;
}

double MeasureModifyCost(core::Prima* db, int updates) {
  const auto* item = db->access().catalog().FindAtomType("item");
  auto atoms = db->access().AllAtoms(item->id);
  const auto start = std::chrono::steady_clock::now();
  double v = 10000;
  for (int i = 0; i < updates; ++i) {
    Require(db->access().ModifyAtom(atoms[i % atoms.size()],
                                    {AttrValue{2, Value::Real(v += 0.5)}}),
            "modify");
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         updates;
}

void Report() {
  PrintHeader("E12 / §3.2 — deferred update of redundant structures",
              "Claim: with deferral, the immediate cost of an update is "
              "independent of the number of redundant structures; eager "
              "propagation pays per structure. Reads stay correct (scans "
              "merge pending work).");

  std::printf("%-12s %22s %22s\n", "#structures", "deferred us/update",
              "immediate us/update");
  for (int s = 0; s <= 4; ++s) {
    auto deferred = MakeDb(true, s);
    auto eager = MakeDb(false, s);
    const double d = MeasureModifyCost(deferred.get(), 500);
    const double e = MeasureModifyCost(eager.get(), 500);
    std::printf("%-12d %22.2f %22.2f\n", s, d, e);
  }
  std::printf("\npending queue after the deferred run is drained on demand; "
              "every structure converges (verified by tests).\n");
}

void BM_Modify(benchmark::State& state) {
  const bool defer = state.range(0) != 0;
  const int structures = static_cast<int>(state.range(1));
  auto db = MakeDb(defer, structures);
  const auto* item = db->access().catalog().FindAtomType("item");
  auto atoms = db->access().AllAtoms(item->id);
  size_t i = 0;
  double v = 50000;
  for (auto _ : state) {
    Require(db->access().ModifyAtom(atoms[i++ % atoms.size()],
                                    {AttrValue{2, Value::Real(v += 0.5)}}),
            "modify");
  }
  state.counters["pending"] =
      static_cast<double>(db->access().PendingCount());
}
BENCHMARK(BM_Modify)
    ->Args({1, 0})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({0, 0})
    ->Args({0, 2})
    ->Args({0, 4})
    ->ArgNames({"deferred", "structures"});

void BM_DrainAfterBurst(benchmark::State& state) {
  // The deferred work does not disappear — this measures the drain side.
  const int structures = static_cast<int>(state.range(0));
  auto db = MakeDb(true, structures);
  const auto* item = db->access().catalog().FindAtomType("item");
  auto atoms = db->access().AllAtoms(item->id);
  double v = 90000;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 100; ++i) {
      Require(db->access().ModifyAtom(atoms[i % atoms.size()],
                                      {AttrValue{2, Value::Real(v += 0.5)}}),
              "modify");
    }
    state.ResumeTiming();
    Require(db->access().DrainAll(), "drain");
  }
}
BENCHMARK(BM_DrainAfterBurst)->Arg(2)->Arg(4);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
