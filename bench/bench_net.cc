// Network server benchmarks: what a round trip over the framed wire
// protocol costs against in-process execution, and how the thread-per-
// connection server holds up under hundreds of concurrent connections.
//
//   - remote vs in-process statement cost: the same one-shot SELECT and
//     the same prepared INSERT, through net::Client vs core::Session;
//   - concurrent-connection storm: N connections (up to several hundred)
//     each running a transactional insert+select mix, reporting p50/p99
//     statement latency and aggregate throughput per connection count.
//
//   $ ./bench_net

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/session.h"
#include "net/client.h"
#include "net/server.h"

namespace prima::bench {
namespace {

using access::Value;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::unique_ptr<core::Prima> OpenNetDb(uint32_t max_connections) {
  core::PrimaOptions options;
  options.storage.buffer_bytes = 32u << 20;
  options.listen_port = 0;
  options.net_max_connections = max_connections;
  return RequireR(core::Prima::Open(std::move(options)), "open");
}

std::unique_ptr<net::Client> ConnectLoopback(core::Prima* db) {
  return RequireR(
      net::Client::Connect("127.0.0.1", db->net_server()->port()),
      "connect");
}

void SetupItemSchema(core::Prima* db) {
  Require(db->Execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                      "num: INTEGER, name: CHAR_VAR) KEYS_ARE (num)")
              .status(),
          "schema");
  for (int i = 0; i < 64; ++i) {
    Require(db->Execute("INSERT item (num = " + std::to_string(i) +
                        ", name = 'seed')")
                .status(),
            "seed");
  }
}

// ---------------------------------------------------------------------------
// Report: remote vs in-process, then the connection storm
// ---------------------------------------------------------------------------

void ReportWireTax() {
  PrintHeader("network server — the wire tax",
              "a remote statement pays one framed round trip over loopback "
              "on top of the in-process execution it maps onto");

  auto db = OpenNetDb(/*max_connections=*/16);
  SetupItemSchema(db.get());
  auto session = db->OpenSession();
  auto client = ConnectLoopback(db.get());

  constexpr int kExecutions = 2000;
  const std::string query = "SELECT ALL FROM item WHERE num >= 32";

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kExecutions; ++i) {
    auto r = RequireR(session->Execute(query), "local select");
    benchmark::DoNotOptimize(r);
  }
  const double local_s = SecondsSince(t0);

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kExecutions; ++i) {
    auto r = RequireR(client->Execute(query), "remote select");
    benchmark::DoNotOptimize(r);
  }
  const double remote_s = SecondsSince(t0);

  std::printf("  one-shot SELECT x%d   in-process %8.1f stmt/s   remote "
              "%8.1f stmt/s   (tax %.1fx)\n",
              kExecutions, kExecutions / local_s, kExecutions / remote_s,
              remote_s / local_s);

  auto local_ins = RequireR(session->Prepare("INSERT item (num = ?, "
                                             "name = 'bench')"),
                            "local prepare");
  auto remote_ins = RequireR(client->Prepare("INSERT item (num = ?, "
                                             "name = 'bench')"),
                             "remote prepare");
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kExecutions; ++i) {
    Require(local_ins.Bind(0, Value::Int(100000 + i)), "bind");
    RequireR(local_ins.Execute(), "local insert");
  }
  const double local_ins_s = SecondsSince(t0);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kExecutions; ++i) {
    Require(remote_ins.Bind(0, Value::Int(200000 + i)), "bind");
    RequireR(remote_ins.Execute(), "remote insert");
  }
  const double remote_ins_s = SecondsSince(t0);
  std::printf("  prepared INSERT x%d   in-process %8.1f stmt/s   remote "
              "%8.1f stmt/s   (tax %.1fx)\n\n",
              kExecutions, kExecutions / local_ins_s,
              kExecutions / remote_ins_s, remote_ins_s / local_ins_s);
}

void ReportConnectionStorm() {
  PrintHeader("network server — concurrent connection storm",
              "thread-per-connection: each connection owns one server-side "
              "session; p50/p99 are per-statement latencies seen by the "
              "remote clients");

  std::printf("  %11s %14s %12s %12s\n", "connections", "stmt/s total",
              "p50 (us)", "p99 (us)");
  // The CI smoke run (PRIMA_BENCH_SMOKE set) skips the widest tier; the
  // full report storms hundreds of connections.
  const bool smoke = std::getenv("PRIMA_BENCH_SMOKE") != nullptr;
  const std::vector<int> tiers =
      smoke ? std::vector<int>{8, 64} : std::vector<int>{8, 64, 256};
  for (const int kConns : tiers) {
    auto db = OpenNetDb(static_cast<uint32_t>(kConns) + 8);
    SetupItemSchema(db.get());
    constexpr int kStatementsPerConn = 60;

    LatencyRecorder latencies;
    std::atomic<uint64_t> statements{0};
    std::vector<std::thread> threads;
    threads.reserve(kConns);
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < kConns; ++c) {
      threads.emplace_back([&, c] {
        auto client = ConnectLoopback(db.get());
        for (int i = 0; i < kStatementsPerConn; ++i) {
          const auto s0 = std::chrono::steady_clock::now();
          if (i % 4 == 3) {
            RequireR(client->Execute("SELECT ALL FROM item WHERE num >= "
                                     "60"),
                     "storm select");
          } else {
            Require(client->Begin(), "begin");
            RequireR(client->Execute("INSERT item (num = " +
                                     std::to_string(1000 + c * 1000 + i) +
                                     ", name = 'storm')"),
                     "storm insert");
            Require(client->Commit(), "commit");
          }
          latencies.RecordUs(SecondsSince(s0) * 1e6);
          statements.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    const double wall_s = SecondsSince(t0);
    const obs::HistogramSnapshot snap = latencies.Snapshot();
    std::printf("  %11d %14.0f %12.0f %12.0f\n", kConns,
                statements.load() / wall_s, static_cast<double>(snap.p50()),
                static_cast<double>(snap.p99()));
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Microbenchmarks (the CI smoke filter runs BM_RemoteExecute)
// ---------------------------------------------------------------------------

void BM_RemoteExecute(benchmark::State& state) {
  auto db = OpenNetDb(/*max_connections=*/8);
  SetupItemSchema(db.get());
  auto client = ConnectLoopback(db.get());
  for (auto _ : state) {
    auto r = RequireR(client->Execute("SELECT ALL FROM item WHERE num >= 60"),
                      "select");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteExecute);

void BM_InProcessExecute(benchmark::State& state) {
  auto db = OpenDb();
  SetupItemSchema(db.get());
  auto session = db->OpenSession();
  for (auto _ : state) {
    auto r = RequireR(session->Execute("SELECT ALL FROM item WHERE num >= 60"),
                      "select");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InProcessExecute);

void BM_RemoteCursorStream(benchmark::State& state) {
  auto db = OpenNetDb(/*max_connections=*/8);
  SetupItemSchema(db.get());
  auto client = ConnectLoopback(db.get());
  for (auto _ : state) {
    auto cursor = RequireR(client->OpenCursor("SELECT ALL FROM item",
                                              /*batch_size=*/16),
                           "cursor");
    size_t n = 0;
    for (;;) {
      auto m = RequireR(cursor.Next(), "next");
      if (!m.has_value()) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
    (void)cursor.Close();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoteCursorStream);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::ReportWireTax();
  prima::bench::ReportConnectionStorm();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
