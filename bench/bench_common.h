#ifndef PRIMA_BENCH_BENCH_COMMON_H_
#define PRIMA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/prima.h"
#include "obs/metrics.h"
#include "workloads/brep.h"
#include "workloads/geo.h"
#include "workloads/vlsi.h"

namespace prima::bench {

/// Abort the bench with a readable message when setup fails.
inline void Require(const util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T RequireR(util::Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

/// Fresh in-memory database.
inline std::unique_ptr<core::Prima> OpenDb(size_t buffer_bytes = 16u << 20) {
  core::PrimaOptions options;
  options.storage.buffer_bytes = buffer_bytes;
  return RequireR(core::Prima::Open(options), "open");
}

/// Fresh database preloaded with `n` BREP tetrahedra (solid/brep no from
/// `base`).
inline std::unique_ptr<core::Prima> OpenBrepDb(int n, int64_t base = 1000,
                                               size_t buffer_bytes = 16u
                                                                     << 20) {
  auto db = OpenDb(buffer_bytes);
  workloads::BrepWorkload brep(db.get());
  Require(brep.CreateSchema(), "brep schema");
  RequireR(brep.BuildMany(base, n), "brep data");
  return db;
}

inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

/// Shared latency recorder for multi-threaded bench loops, built on the
/// kernel's own obs::Histogram: Record() is lock-free from any thread (no
/// per-thread vectors, no mutex, no sort at the end), and percentiles come
/// off the merged snapshot with <= 12.5% bucket error. Record microseconds.
class LatencyRecorder {
 public:
  void RecordUs(double us) {
    hist_.Record(us <= 0 ? 0 : static_cast<uint64_t>(us));
  }
  obs::HistogramSnapshot Snapshot() const { return hist_.Snapshot(); }

 private:
  obs::Histogram hist_;
};

}  // namespace prima::bench

#endif  // PRIMA_BENCH_BENCH_COMMON_H_
