// Experiment E11 (paper §3.2): the five scan operations — plus the
// multi-client tier behind the sharded buffer pool / read-ahead /
// pipelined-assembly work.
//
// Claim: the scan menu trades generality for cost — atom-type scans read
// everything; sort scans are cheap exactly when a redundant sort order (or
// access path) exists and expensive when the sort must be performed
// explicitly; access-path scans touch only the qualifying range; cluster
// scans read materialized molecules.
//
// The multi-client report runs N concurrent full scans (in-process sessions
// AND remote net::Client connections) against two configurations of the
// same kernel: knobs-off (1 buffer shard, no read-ahead, serial assembly —
// the pre-sharding behavior) and scaled-to-hardware (the defaults). It
// prints aggregate MB/s and p99 scan latency per tier, the 8-scanner
// speedup, and a larger-than-buffer run where every scan misses.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "core/session.h"
#include "net/client.h"
#include "net/server.h"

namespace prima::bench {
namespace {

using namespace prima::access;  // NOLINT — bench-local brevity

constexpr int kItems = 2000;

void LoadItems(core::Prima* db, int items) {
  Require(db->Execute("CREATE ATOM_TYPE item"
                      " ( item_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   weight : REAL,"
                      "   label : CHAR_VAR,"
                      "   box : REF_TO (box.items) )"
                      " KEYS_ARE (num)")
              .status(),
          "item");
  Require(db->Execute("CREATE ATOM_TYPE box"
                      " ( box_id : IDENTIFIER,"
                      "   box_no : INTEGER,"
                      "   items : SET_OF (REF_TO (item.box)) )"
                      " KEYS_ARE (box_no)")
              .status(),
          "box");
  AccessSystem& access = db->access();
  const auto* item = access.catalog().FindAtomType("item");
  const auto* box = access.catalog().FindAtomType("box");
  util::Random rng(9);
  Tid current_box;
  for (int i = 0; i < items; ++i) {
    if (i % 20 == 0) {
      current_box = RequireR(
          access.InsertAtom(box->id, {AttrValue{1, Value::Int(i / 20)}}),
          "box");
    }
    RequireR(access.InsertAtom(
                 item->id,
                 {AttrValue{1, Value::Int(i)},
                  AttrValue{2, Value::Real(rng.NextDouble() * 1000)},
                  AttrValue{3, Value::String("item" + std::to_string(i))},
                  AttrValue{4, Value::Ref(current_box)}}),
             "item");
  }
}

std::unique_ptr<core::Prima> MakeDb() {
  auto db = OpenDb();
  LoadItems(db.get(), kItems);
  return db;
}

AtomTypeId ItemType(core::Prima* db) {
  return db->access().catalog().FindAtomType("item")->id;
}

void Report() {
  PrintHeader("E11 / §3.2 — the five scan operations",
              "Claim: scan cost tracks the supporting structure — the sort "
              "scan is free with a sort order, linear without; access-path "
              "scans touch only the range; cluster scans read materialized "
              "molecules.");
  auto db = MakeDb();
  std::printf("database: %d items in %d boxes\n\n", kItems, kItems / 20);

  // Sort scan modes before/after installing the sort order.
  SortScan no_support(&db->access(), ItemType(db.get()), {2}, {true});
  Require(no_support.Open(), "open");
  std::printf("sort scan on weight without structure: mode = %s\n",
              no_support.mode() == SortScan::Mode::kExplicitSort
                  ? "explicit (temporary) sort"
                  : "supported");
  RequireR(db->ExecuteLdl("CREATE SORT ORDER w ON item (weight)"), "so");
  SortScan supported(&db->access(), ItemType(db.get()), {2}, {true});
  Require(supported.Open(), "open");
  std::printf("sort scan on weight with sort order:   mode = %s\n",
              supported.mode() == SortScan::Mode::kSortOrder
                  ? "redundant sort order"
                  : "unexpected");
}

// ---------------------------------------------------------------------------
// Multi-client scan tier: concurrent sessions, knobs-off vs scaled kernel
// ---------------------------------------------------------------------------

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Open the kernel either knobs-off (1 buffer shard, no read-ahead, serial
/// cursor assembly — the pre-sharding behavior, reproducible as a baseline
/// in the same binary) or with the scaled-to-hardware defaults.
std::unique_ptr<core::Prima> OpenScanDb(bool scaled, size_t buffer_bytes,
                                        bool with_server,
                                        const std::string& path = "") {
  core::PrimaOptions options;
  options.storage.buffer_bytes = buffer_bytes;
  if (!path.empty()) {
    options.in_memory = false;
    options.path = path;
  }
  if (!scaled) {
    options.buffer_shards = 1;
    options.readahead_pages = 0;
    options.cursor_assembly_threads = 1;
  }
  if (with_server) options.listen_port = 0;
  return RequireR(core::Prima::Open(std::move(options)), "open");
}

/// On-device footprint of every data segment — the bytes one full scan of
/// the database sweeps past.
double DataMb(core::Prima* db) {
  double bytes = 0;
  for (storage::SegmentId seg : db->storage().ListSegments()) {
    auto pages = db->storage().PageCount(seg);
    auto size = db->storage().SegmentPageSize(seg);
    if (pages.ok() && size.ok()) {
      bytes += static_cast<double>(*pages) * storage::PageSizeBytes(*size);
    }
  }
  return bytes / (1024.0 * 1024.0);
}

struct TierResult {
  double mb_per_s = 0;
  double p99_ms = 0;
  double scans_per_s = 0;
};

/// `clients` concurrent scanners, each draining `scans` full "SELECT ALL
/// FROM item" cursors. remote=false runs in-process sessions; remote=true
/// connects each scanner through net::Client over loopback.
TierResult RunScanTier(core::Prima* db, int clients, int scans, bool remote,
                       size_t expected) {
  LatencyRecorder latencies;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::unique_ptr<core::Session> session;
      std::unique_ptr<net::Client> client;
      if (remote) {
        client = RequireR(
            net::Client::Connect("127.0.0.1", db->net_server()->port()),
            "connect");
      } else {
        session = db->OpenSession();
      }
      for (int i = 0; i < scans; ++i) {
        const auto s0 = std::chrono::steady_clock::now();
        size_t n = 0;
        if (remote) {
          auto cursor = RequireR(client->OpenCursor("SELECT ALL FROM item"),
                                 "remote cursor");
          for (;;) {
            auto m = RequireR(cursor.Next(), "remote next");
            if (!m) break;
            ++n;
          }
        } else {
          auto cursor = RequireR(session->Query("SELECT ALL FROM item"),
                                 "cursor");
          for (;;) {
            auto m = RequireR(cursor.Next(), "next");
            if (!m) break;
            ++n;
          }
        }
        if (n != expected) {
          std::fprintf(stderr, "scan returned %zu molecules, want %zu\n", n,
                       expected);
          std::abort();
        }
        latencies.RecordUs(SecondsSince(s0) * 1e6);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = SecondsSince(t0);
  TierResult r;
  const double total_scans = static_cast<double>(clients) * scans;
  r.scans_per_s = total_scans / wall_s;
  r.mb_per_s = total_scans * DataMb(db) / wall_s;
  r.p99_ms = static_cast<double>(latencies.Snapshot().p99()) / 1e3;
  return r;
}

void ReportMultiClient() {
  PrintHeader(
      "multi-client scans — sharded buffer pool + pipelined assembly",
      "Claim: with the buffer pool sharded, scans prefetched, and molecule "
      "assembly pipelined, aggregate scan throughput scales with concurrent "
      "scanners instead of serializing on one pool mutex.");
  const bool smoke = std::getenv("PRIMA_BENCH_SMOKE") != nullptr;
  const int scans = smoke ? 4 : 16;
  const std::vector<int> tiers =
      smoke ? std::vector<int>{8} : std::vector<int>{1, 4, 8};
  const size_t expected = kItems;

  double knobs_off_8 = 0, scaled_8 = 0;
  for (const bool scaled : {false, true}) {
    auto db = OpenScanDb(scaled, 16u << 20, /*with_server=*/true);
    LoadItems(db.get(), kItems);
    const auto snap = db->stats();
    std::printf("config: %s (%zu shard%s)\n",
                scaled ? "scaled-to-hardware" : "knobs-off baseline",
                snap.buffer.shards.size(),
                snap.buffer.shards.size() == 1 ? "" : "s");
    std::printf("  %-11s %8s %12s %10s %10s\n", "path", "clients",
                "scans/s", "MB/s", "p99 (ms)");
    for (const int clients : tiers) {
      const TierResult in_proc =
          RunScanTier(db.get(), clients, scans, /*remote=*/false, expected);
      std::printf("  %-11s %8d %12.1f %10.1f %10.2f\n", "in-process",
                  clients, in_proc.scans_per_s, in_proc.mb_per_s,
                  in_proc.p99_ms);
      if (clients == 8) {
        (scaled ? scaled_8 : knobs_off_8) = in_proc.mb_per_s;
      }
      const TierResult net =
          RunScanTier(db.get(), clients, scans, /*remote=*/true, expected);
      std::printf("  %-11s %8d %12.1f %10.1f %10.2f\n", "net::Client",
                  clients, net.scans_per_s, net.mb_per_s, net.p99_ms);
    }
    std::printf("\n");
  }
  if (knobs_off_8 > 0) {
    std::printf("aggregate speedup at 8 in-process scanners: %.2fx\n\n",
                scaled_8 / knobs_off_8);
  }
}

void ReportLargerThanBuffer() {
  PrintHeader(
      "larger-than-buffer scans — eviction storm + read-ahead",
      "Claim: when the working set exceeds the pool, every scan runs an "
      "eviction storm against the real (file-backed) device; sharding keeps "
      "the storms parallel and read-ahead batches the refill into chained "
      "reads instead of page-at-a-time misses.");
  const bool smoke = std::getenv("PRIMA_BENCH_SMOKE") != nullptr;
  const int items = smoke ? 8000 : 16000;
  const int scans = smoke ? 2 : 4;
  // A pool deliberately smaller than the item base file: each sweep evicts
  // its own tail, so steady-state scans miss on every base page.
  const size_t buffer_bytes = 128u << 10;
  const std::string dir = "/tmp/prima_bench_scans_" +
                          std::to_string(static_cast<long>(::getpid()));
  for (const bool scaled : {false, true}) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    auto db = OpenScanDb(scaled, buffer_bytes, /*with_server=*/false, dir);
    LoadItems(db.get(), items);
    const double data_mb = DataMb(db.get());
    const TierResult r = RunScanTier(db.get(), 8, scans, /*remote=*/false,
                                     static_cast<size_t>(items));
    const auto snap = db->stats();
    std::printf(
        "  %-22s data %5.1f MB / pool %4.2f MB   %8.1f MB/s   p99 %7.2f ms"
        "   evictions %8llu   prefetched %8llu\n",
        scaled ? "scaled-to-hardware" : "knobs-off baseline", data_mb,
        buffer_bytes / (1024.0 * 1024.0), r.mb_per_s, r.p99_ms,
        static_cast<unsigned long long>(snap.buffer.evictions),
        static_cast<unsigned long long>(snap.buffer.prefetched_pages));
  }
  std::filesystem::remove_all(dir);
  std::printf("\n");
}

void ReportReaderWriterStorm() {
  PrintHeader(
      "readers vs. writer storm — snapshot isolation under churn",
      "Claim: snapshot cursors resolve against pinned version chains "
      "without taking a single lock, so reader throughput and tail latency "
      "hold steady while a writer commits continuously; latest-committed "
      "readers share the same lock-free read path and differ only in "
      "which state they observe.");
  const bool smoke = std::getenv("PRIMA_BENCH_SMOKE") != nullptr;
  const double run_s = smoke ? 0.2 : 1.0;
  auto db = OpenScanDb(/*scaled=*/true, 16u << 20, /*with_server=*/false);
  LoadItems(db.get(), kItems);

  std::printf("  %-17s %8s %10s %10s %12s\n", "isolation", "readers",
              "scans/s", "p99 (ms)", "writer tx/s");
  for (const core::Isolation iso :
       {core::Isolation::kLatestCommitted, core::Isolation::kSnapshot}) {
    for (const int readers : {1, 8}) {
      std::atomic<bool> stop{false};
      std::atomic<uint64_t> scans{0};
      std::atomic<uint64_t> commits{0};
      LatencyRecorder latencies;
      std::vector<std::thread> threads;
      for (int r = 0; r < readers; ++r) {
        threads.emplace_back([&] {
          auto session = db->OpenSession();
          session->set_default_isolation(iso);
          while (!stop.load(std::memory_order_relaxed)) {
            const auto s0 = std::chrono::steady_clock::now();
            auto cursor =
                RequireR(session->Query("SELECT ALL FROM item"), "cursor");
            size_t n = 0;
            for (;;) {
              auto m = RequireR(cursor.Next(), "next");
              if (!m) break;
              ++n;
            }
            if (n != static_cast<size_t>(kItems)) {
              std::fprintf(stderr, "storm scan saw %zu molecules\n", n);
              std::abort();
            }
            latencies.RecordUs(SecondsSince(s0) * 1e6);
            scans.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      threads.emplace_back([&] {
        auto session = db->OpenSession();
        int g = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          ++g;
          Require(session
                      ->Execute("MODIFY item SET label = 'g" +
                                std::to_string(g) + "' WHERE num = " +
                                std::to_string(g % kItems))
                      .status(),
                  "modify");
          commits.fetch_add(1, std::memory_order_relaxed);
        }
      });
      std::this_thread::sleep_for(
          std::chrono::duration<double>(run_s));
      stop.store(true);
      for (auto& th : threads) th.join();
      std::printf("  %-17s %8d %10.1f %10.2f %12.1f\n",
                  iso == core::Isolation::kSnapshot ? "snapshot"
                                                    : "latest-committed",
                  readers, static_cast<double>(scans.load()) / run_s,
                  static_cast<double>(latencies.Snapshot().p99()) / 1e3,
                  static_cast<double>(commits.load()) / run_s);
    }
  }
  const auto versions = db->stats().versions;
  std::printf(
      "  version store: %llu installed / %llu retired, %llu chain walks, "
      "%llu snapshots opened\n\n",
      static_cast<unsigned long long>(versions.versions_installed),
      static_cast<unsigned long long>(versions.versions_retired),
      static_cast<unsigned long long>(versions.chain_walks),
      static_cast<unsigned long long>(versions.snapshots_opened));
}

void BM_AtomTypeScan(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    AtomTypeScan scan(&db->access(), ItemType(db.get()));
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_AtomTypeScan);

void BM_SortScan_WithSortOrder(benchmark::State& state) {
  auto db = MakeDb();
  RequireR(db->ExecuteLdl("CREATE SORT ORDER w ON item (weight)"), "so");
  for (auto _ : state) {
    SortScan scan(&db->access(), ItemType(db.get()), {2}, {true});
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_SortScan_WithSortOrder);

void BM_SortScan_Explicit(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    SortScan scan(&db->access(), ItemType(db.get()), {2}, {true});
    Require(scan.Open(), "open");  // sorts all atoms explicitly
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_SortScan_Explicit);

void BM_AccessPathScan_Range(benchmark::State& state) {
  auto db = MakeDb();
  // The implicit key index on num serves as the access path.
  const StructureDef* index = db->access().catalog().FindStructure("item_key");
  const int64_t width = state.range(0);
  int64_t lo = 0;
  for (auto _ : state) {
    KeyRange range;
    range.start = std::vector<Value>{Value::Int(lo % (kItems - width))};
    range.stop = std::vector<Value>{Value::Int(lo % (kItems - width) + width)};
    lo += 37;
    BTreeAccessPathScan scan(&db->access(), index->id, range);
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * (width + 1));
}
BENCHMARK(BM_AccessPathScan_Range)->Arg(10)->Arg(100)->Arg(1000);

void BM_AccessPathScan_Prior(benchmark::State& state) {
  // Backward traversal is native (doubly chained leaves).
  auto db = MakeDb();
  const StructureDef* index = db->access().catalog().FindStructure("item_key");
  for (auto _ : state) {
    KeyRange range;
    range.start = std::vector<Value>{Value::Int(500)};
    range.stop = std::vector<Value>{Value::Int(600)};
    BTreeAccessPathScan scan(&db->access(), index->id, range,
                             /*forward=*/false);
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_AccessPathScan_Prior);

void BM_AtomClusterTypeScan(benchmark::State& state) {
  auto db = MakeDb();
  RequireR(db->ExecuteLdl("CREATE ATOM CLUSTER bc ON box (items)"), "cluster");
  const uint32_t cid = db->access().catalog().FindStructure("bc")->id;
  for (auto _ : state) {
    AtomClusterTypeScan scan(&db->access(), cid);
    Require(scan.Open(), "open");
    int atoms = 0;
    for (;;) {
      auto image = RequireR(scan.Next(), "next");
      if (!image) break;
      for (const auto& [type, group] : image->groups) {
        atoms += static_cast<int>(group.size());
      }
    }
    benchmark::DoNotOptimize(atoms);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_AtomClusterTypeScan);

void BM_AtomClusterScan_SingleCluster(benchmark::State& state) {
  auto db = MakeDb();
  RequireR(db->ExecuteLdl("CREATE ATOM CLUSTER bc ON box (items)"), "cluster");
  const uint32_t cid = db->access().catalog().FindStructure("bc")->id;
  const auto* box = db->access().catalog().FindAtomType("box");
  const Tid first_box = db->access().AllAtoms(box->id)[0];
  const AtomTypeId item = ItemType(db.get());
  for (auto _ : state) {
    AtomClusterScan scan(&db->access(), cid, first_box, item);
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_AtomClusterScan_SingleCluster);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  prima::bench::ReportMultiClient();
  prima::bench::ReportLargerThanBuffer();
  prima::bench::ReportReaderWriterStorm();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
