// Experiment E11 (paper §3.2): the five scan operations.
//
// Claim: the scan menu trades generality for cost — atom-type scans read
// everything; sort scans are cheap exactly when a redundant sort order (or
// access path) exists and expensive when the sort must be performed
// explicitly; access-path scans touch only the qualifying range; cluster
// scans read materialized molecules.

#include "bench_common.h"

namespace prima::bench {
namespace {

using namespace prima::access;  // NOLINT — bench-local brevity

constexpr int kItems = 2000;

std::unique_ptr<core::Prima> MakeDb() {
  auto db = OpenDb();
  Require(db->Execute("CREATE ATOM_TYPE item"
                      " ( item_id : IDENTIFIER,"
                      "   num : INTEGER,"
                      "   weight : REAL,"
                      "   label : CHAR_VAR,"
                      "   box : REF_TO (box.items) )"
                      " KEYS_ARE (num)")
              .status(),
          "item");
  Require(db->Execute("CREATE ATOM_TYPE box"
                      " ( box_id : IDENTIFIER,"
                      "   box_no : INTEGER,"
                      "   items : SET_OF (REF_TO (item.box)) )"
                      " KEYS_ARE (box_no)")
              .status(),
          "box");
  AccessSystem& access = db->access();
  const auto* item = access.catalog().FindAtomType("item");
  const auto* box = access.catalog().FindAtomType("box");
  util::Random rng(9);
  Tid current_box;
  for (int i = 0; i < kItems; ++i) {
    if (i % 20 == 0) {
      current_box = RequireR(
          access.InsertAtom(box->id, {AttrValue{1, Value::Int(i / 20)}}),
          "box");
    }
    RequireR(access.InsertAtom(
                 item->id,
                 {AttrValue{1, Value::Int(i)},
                  AttrValue{2, Value::Real(rng.NextDouble() * 1000)},
                  AttrValue{3, Value::String("item" + std::to_string(i))},
                  AttrValue{4, Value::Ref(current_box)}}),
             "item");
  }
  return db;
}

AtomTypeId ItemType(core::Prima* db) {
  return db->access().catalog().FindAtomType("item")->id;
}

void Report() {
  PrintHeader("E11 / §3.2 — the five scan operations",
              "Claim: scan cost tracks the supporting structure — the sort "
              "scan is free with a sort order, linear without; access-path "
              "scans touch only the range; cluster scans read materialized "
              "molecules.");
  auto db = MakeDb();
  std::printf("database: %d items in %d boxes\n\n", kItems, kItems / 20);

  // Sort scan modes before/after installing the sort order.
  SortScan no_support(&db->access(), ItemType(db.get()), {2}, {true});
  Require(no_support.Open(), "open");
  std::printf("sort scan on weight without structure: mode = %s\n",
              no_support.mode() == SortScan::Mode::kExplicitSort
                  ? "explicit (temporary) sort"
                  : "supported");
  RequireR(db->ExecuteLdl("CREATE SORT ORDER w ON item (weight)"), "so");
  SortScan supported(&db->access(), ItemType(db.get()), {2}, {true});
  Require(supported.Open(), "open");
  std::printf("sort scan on weight with sort order:   mode = %s\n",
              supported.mode() == SortScan::Mode::kSortOrder
                  ? "redundant sort order"
                  : "unexpected");
}

void BM_AtomTypeScan(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    AtomTypeScan scan(&db->access(), ItemType(db.get()));
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_AtomTypeScan);

void BM_SortScan_WithSortOrder(benchmark::State& state) {
  auto db = MakeDb();
  RequireR(db->ExecuteLdl("CREATE SORT ORDER w ON item (weight)"), "so");
  for (auto _ : state) {
    SortScan scan(&db->access(), ItemType(db.get()), {2}, {true});
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_SortScan_WithSortOrder);

void BM_SortScan_Explicit(benchmark::State& state) {
  auto db = MakeDb();
  for (auto _ : state) {
    SortScan scan(&db->access(), ItemType(db.get()), {2}, {true});
    Require(scan.Open(), "open");  // sorts all atoms explicitly
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_SortScan_Explicit);

void BM_AccessPathScan_Range(benchmark::State& state) {
  auto db = MakeDb();
  // The implicit key index on num serves as the access path.
  const StructureDef* index = db->access().catalog().FindStructure("item_key");
  const int64_t width = state.range(0);
  int64_t lo = 0;
  for (auto _ : state) {
    KeyRange range;
    range.start = std::vector<Value>{Value::Int(lo % (kItems - width))};
    range.stop = std::vector<Value>{Value::Int(lo % (kItems - width) + width)};
    lo += 37;
    BTreeAccessPathScan scan(&db->access(), index->id, range);
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * (width + 1));
}
BENCHMARK(BM_AccessPathScan_Range)->Arg(10)->Arg(100)->Arg(1000);

void BM_AccessPathScan_Prior(benchmark::State& state) {
  // Backward traversal is native (doubly chained leaves).
  auto db = MakeDb();
  const StructureDef* index = db->access().catalog().FindStructure("item_key");
  for (auto _ : state) {
    KeyRange range;
    range.start = std::vector<Value>{Value::Int(500)};
    range.stop = std::vector<Value>{Value::Int(600)};
    BTreeAccessPathScan scan(&db->access(), index->id, range,
                             /*forward=*/false);
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_AccessPathScan_Prior);

void BM_AtomClusterTypeScan(benchmark::State& state) {
  auto db = MakeDb();
  RequireR(db->ExecuteLdl("CREATE ATOM CLUSTER bc ON box (items)"), "cluster");
  const uint32_t cid = db->access().catalog().FindStructure("bc")->id;
  for (auto _ : state) {
    AtomClusterTypeScan scan(&db->access(), cid);
    Require(scan.Open(), "open");
    int atoms = 0;
    for (;;) {
      auto image = RequireR(scan.Next(), "next");
      if (!image) break;
      for (const auto& [type, group] : image->groups) {
        atoms += static_cast<int>(group.size());
      }
    }
    benchmark::DoNotOptimize(atoms);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_AtomClusterTypeScan);

void BM_AtomClusterScan_SingleCluster(benchmark::State& state) {
  auto db = MakeDb();
  RequireR(db->ExecuteLdl("CREATE ATOM CLUSTER bc ON box (items)"), "cluster");
  const uint32_t cid = db->access().catalog().FindStructure("bc")->id;
  const auto* box = db->access().catalog().FindAtomType("box");
  const Tid first_box = db->access().AllAtoms(box->id)[0];
  const AtomTypeId item = ItemType(db.get());
  for (auto _ : state) {
    AtomClusterScan scan(&db->access(), cid, first_box, item);
    Require(scan.Open(), "open");
    int n = 0;
    for (;;) {
      auto atom = RequireR(scan.Next(), "next");
      if (!atom) break;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_AtomClusterScan_SingleCluster);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
