// Experiment E8 (paper Fig. 3.1): the multi-layer implementation model.
//
// Claim: one molecule-set operation at the data system decomposes into many
// atom operations at the access system, which decompose into many page
// operations at the storage system, which decompose into block transfers on
// the device — the classic mapping pyramid. We regenerate that pyramid from
// the per-layer counters for a representative query mix.

#include "bench_common.h"

namespace prima::bench {
namespace {

constexpr int kSolids = 48;

void Report() {
  PrintHeader("E8 / Fig. 3.1 — the implementation model's mapping hierarchy",
              "Claim: molecule ops fan out into atom ops, page ops, and "
              "block transfers layer by layer.");

  // Small buffer so the device layer actually sees traffic; cold start.
  auto db = OpenBrepDb(kSolids, 1700, /*buffer_bytes=*/256u << 10);
  Require(db->Flush(), "flush");
  for (storage::SegmentId seg : db->storage().ListSegments()) {
    Require(db->storage().buffer().Discard(seg), "discard");
  }

  db->data().stats().Reset();
  db->access().stats().Reset();
  db->storage().buffer().stats().Reset();
  db->storage().device().stats().Reset();

  // A molecule-set operation: derive all brep molecules (vertical access).
  auto set = RequireR(db->Query("SELECT ALL FROM brep-face-edge-point"),
                      "query");

  const auto& ds = db->data().stats();
  const auto& as = db->access().stats();
  const auto& bs = db->storage().buffer().stats();
  const auto& dev = db->storage().device().stats();

  size_t atoms = 0;
  for (const auto& m : set.molecules) atoms += m.AtomCount();

  std::printf("%-18s %-34s %12s\n", "layer", "interface objects", "operations");
  std::printf("%-18s %-34s %12llu\n", "data system",
              "molecule sets / molecules",
              (unsigned long long)ds.molecules_built.load());
  std::printf("%-18s %-34s %12llu\n", "access system", "atoms",
              (unsigned long long)as.atoms_read.load());
  std::printf("%-18s %-34s %12llu\n", "storage system", "pages (buffer fixes)",
              (unsigned long long)(bs.hits.load() + bs.misses.load()));
  std::printf("%-18s %-34s %12llu\n", "file manager", "blocks",
              (unsigned long long)(dev.blocks_read.load() +
                                   dev.blocks_written.load()));
  std::printf("\nresult: %zu molecules / %zu atoms; buffer hit ratio %.1f%%\n",
              set.size(), atoms, 100.0 * bs.HitRatio());
  std::printf("fan-out per molecule: %.1f atom ops, %.1f page ops\n",
              double(as.atoms_read.load()) / set.size(),
              double(bs.hits.load() + bs.misses.load()) / set.size());
}

// Per-layer micro-costs for the same logical object.

void BM_Layer1_DeviceBlockRead(benchmark::State& state) {
  auto device = std::make_unique<storage::MemoryBlockDevice>();
  Require(device->Create(1, 4096), "create");
  std::string block(4096, 'b');
  Require(device->Write(1, 0, block.data()), "write");
  for (auto _ : state) {
    Require(device->Read(1, 0, block.data()), "read");
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Layer1_DeviceBlockRead);

void BM_Layer2_BufferFixResident(benchmark::State& state) {
  auto db = OpenBrepDb(4);
  const auto* brep = db->access().catalog().FindAtomType("brep");
  const auto seg = brep->base_segment;
  for (auto _ : state) {
    auto guard = db->storage().FixPage(seg, 1, storage::LatchMode::kShared);
    Require(guard.status(), "fix");
    benchmark::DoNotOptimize(guard->data());
  }
}
BENCHMARK(BM_Layer2_BufferFixResident);

void BM_Layer3_AtomRead(benchmark::State& state) {
  auto db = OpenBrepDb(4);
  const auto* brep = db->access().catalog().FindAtomType("brep");
  auto atoms = db->access().AllAtoms(brep->id);
  size_t i = 0;
  for (auto _ : state) {
    auto atom = db->access().GetAtom(atoms[i++ % atoms.size()]);
    Require(atom.status(), "get");
    benchmark::DoNotOptimize(*atom);
  }
}
BENCHMARK(BM_Layer3_AtomRead);

void BM_Layer4_MoleculeDerivation(benchmark::State& state) {
  auto db = OpenBrepDb(16, 1700);
  int64_t no = 1700;
  for (auto _ : state) {
    auto set = RequireR(
        db->Query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = " +
                  std::to_string(1700 + (no++ % 16))),
        "query");
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_Layer4_MoleculeDerivation);

void BM_Layer5_MoleculeSetDerivation(benchmark::State& state) {
  auto db = OpenBrepDb(16, 1700);
  for (auto _ : state) {
    auto set = RequireR(db->Query("SELECT ALL FROM brep-face-edge-point"),
                        "query");
    benchmark::DoNotOptimize(set);
  }
  state.counters["molecules"] = 16;
}
BENCHMARK(BM_Layer5_MoleculeSetDerivation);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
