// Experiment E3 (paper Fig. 2.3): the solid representation expressed in the
// MAD-DDL — schema compilation, reference resolution, and catalog
// persistence round-trips.
//
// Claim: the extended type concept (IDENTIFIER, typed REF_TO with enforced
// inverses, RECORD, SET_OF with cardinalities) compiles directly from the
// paper's DDL text, and the catalog representation survives persistence.

#include "bench_common.h"
#include "mql/parser.h"

namespace prima::bench {
namespace {

void Report() {
  PrintHeader("E3 / Fig. 2.3 — MAD-DDL schema compilation",
              "Claim: the published BREP DDL compiles verbatim; every "
              "association resolves to a mutually inverse pair.");

  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  Require(brep.CreateSchema(), "schema");

  const access::Catalog& catalog = db->access().catalog();
  std::printf("%-10s %8s %8s %12s\n", "atom type", "attrs", "assocs", "keyed");
  size_t associations = 0;
  for (const auto* type : catalog.ListAtomTypes()) {
    size_t assocs = 0;
    for (const auto& a : type->attrs) {
      if (a.type.IsAssociation()) ++assocs;
    }
    associations += assocs;
    std::printf("%-10s %8zu %8zu %12s\n", type->name.c_str(),
                type->attrs.size(), assocs,
                type->key_attrs.empty() ? "-" : "yes");
  }
  std::printf("\nassociation attrs total: %zu (every one resolved to its "
              "inverse)\n",
              associations);
  std::printf("molecule types defined: %zu (edge_obj, face_obj, brep_obj, "
              "piece_list)\n",
              catalog.ListMoleculeTypes().size());

  const std::string blob = catalog.Encode();
  std::printf("catalog blob: %zu bytes; decode round-trip: ", blob.size());
  access::Catalog copy;
  std::printf("%s\n", copy.DecodeFrom(blob).ok() ? "ok" : "FAILED");
}

void BM_ParseSolidDdl(benchmark::State& state) {
  const std::string ddl =
      "CREATE ATOM_TYPE solid"
      " ( solid_id : IDENTIFIER,"
      "   solid_no : INTEGER,"
      "   description : CHAR_VAR,"
      "   sub : SET_OF (REF_TO (solid.super)),"
      "   super : SET_OF (REF_TO (solid.sub)),"
      "   brep : REF_TO (brep.solid) )"
      " KEYS_ARE (solid_no)";
  for (auto _ : state) {
    auto stmt = mql::ParseStatement(ddl);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSolidDdl);

void BM_CompileFullBrepSchema(benchmark::State& state) {
  for (auto _ : state) {
    auto db = OpenDb(4u << 20);
    workloads::BrepWorkload brep(db.get());
    Require(brep.CreateSchema(), "schema");
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_CompileFullBrepSchema);

void BM_CatalogEncodeDecode(benchmark::State& state) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  Require(brep.CreateSchema(), "schema");
  for (auto _ : state) {
    const std::string blob = db->access().catalog().Encode();
    access::Catalog copy;
    Require(copy.DecodeFrom(blob), "decode");
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_CatalogEncodeDecode);

void BM_ReopenDatabaseWithSchema(benchmark::State& state) {
  // Includes catalog + address table persistence (memory device shared via
  // the storage system of a single Prima instance is not reopenable, so we
  // measure the Flush + fresh AccessSystem::Open path).
  auto db = OpenBrepDb(16);
  Require(db->Flush(), "flush");
  for (auto _ : state) {
    access::AccessSystem fresh(&db->storage(), access::AccessOptions{});
    Require(fresh.Open(), "open");
    benchmark::DoNotOptimize(fresh.catalog().ListAtomTypes());
  }
}
BENCHMARK(BM_ReopenDatabaseWithSchema);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
