// Experiment E2 (paper Fig. 2.2): the three binary association types —
// 1:1, 1:n, n:m — expressed with REFERENCE + SET_OF(REFERENCE) attributes.
//
// Claim: all relationship types reduce to the same symmetric mechanism;
// every connect/disconnect implies exactly one implicit back-reference
// update, independent of the relationship's cardinality class.

#include "bench_common.h"

namespace prima::bench {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

/// Three pairs of atom types, one per relationship type of Fig. 2.2.
void CreateSchema(core::Prima* db) {
  // 1:1 — scalar REF on both sides.
  Require(db->Execute("CREATE ATOM_TYPE ai ( ai_id : IDENTIFIER,"
                      "  num : INTEGER, bj : REF_TO (bi.ai) )")
              .status(),
          "ai");
  Require(db->Execute("CREATE ATOM_TYPE bi ( bi_id : IDENTIFIER,"
                      "  num : INTEGER, ai : REF_TO (ai.bj) )")
              .status(),
          "bi");
  // 1:n — SET on the one side, scalar REF on the many side (the DDL the
  // paper prints under Fig. 2.2).
  Require(db->Execute("CREATE ATOM_TYPE an ( an_id : IDENTIFIER,"
                      "  num : INTEGER, bjs : SET_OF (REF_TO (bn.ai)) )")
              .status(),
          "an");
  Require(db->Execute("CREATE ATOM_TYPE bn ( bn_id : IDENTIFIER,"
                      "  num : INTEGER, ai : REF_TO (an.bjs) )")
              .status(),
          "bn");
  // n:m — SETs on both sides.
  Require(db->Execute("CREATE ATOM_TYPE am ( am_id : IDENTIFIER,"
                      "  num : INTEGER, bjs : SET_OF (REF_TO (bm.ais)) )")
              .status(),
          "am");
  Require(db->Execute("CREATE ATOM_TYPE bm ( bm_id : IDENTIFIER,"
                      "  num : INTEGER, ais : SET_OF (REF_TO (am.bjs)) )")
              .status(),
          "bm");
}

struct Pairs {
  std::vector<Tid> a;
  std::vector<Tid> b;
  uint16_t a_attr;  // association attr on the A side
};

Pairs Populate(core::Prima* db, const char* a_type, const char* b_type,
               int n) {
  Pairs out;
  access::AccessSystem& access = db->access();
  const auto* a = access.catalog().FindAtomType(a_type);
  const auto* b = access.catalog().FindAtomType(b_type);
  out.a_attr = 2;
  for (int i = 0; i < n; ++i) {
    out.a.push_back(RequireR(
        access.InsertAtom(a->id, {AttrValue{1, Value::Int(i)}}), "a"));
    out.b.push_back(RequireR(
        access.InsertAtom(b->id, {AttrValue{1, Value::Int(i)}}), "b"));
  }
  return out;
}

constexpr int kPairs = 256;

void Report() {
  PrintHeader(
      "E2 / Fig. 2.2 — relationship types as symmetric association types",
      "Claim: 1:1, 1:n, n:m all map onto REFERENCE/SET_OF(REFERENCE) pairs; "
      "the system maintains exactly one back-reference per connect, and the "
      "reverse direction is usable 'in exactly the same way'.");

  auto db = OpenDb();
  CreateSchema(db.get());
  access::AccessSystem& access = db->access();

  struct Row {
    const char* kind;
    const char* a_type;
    const char* b_type;
  };
  const Row rows[] = {{"1:1", "ai", "bi"}, {"1:n", "an", "bn"},
                      {"n:m", "am", "bm"}};
  std::printf("%-6s %14s %18s %16s\n", "type", "connects",
              "backref updates", "updates/connect");
  for (const Row& row : rows) {
    Pairs pairs = Populate(db.get(), row.a_type, row.b_type, kPairs);
    const uint64_t before = access.stats().backref_maintenance.load();
    for (int i = 0; i < kPairs; ++i) {
      Require(access.Connect(pairs.a[i], pairs.a_attr, pairs.b[i]), "connect");
    }
    const uint64_t updates = access.stats().backref_maintenance.load() - before;
    std::printf("%-6s %14d %18llu %16.2f\n", row.kind, kPairs,
                (unsigned long long)updates, double(updates) / kPairs);
    // Symmetry spot check: the back reference answers without the forward.
    auto back = access.GetAtom(pairs.b[0]);
    Require(back.status(), "read back");
    const Value& v = back->attrs[2];
    const bool linked = v.kind() == Value::Kind::kTid
                            ? v.AsTid() == pairs.a[0]
                            : v.Contains(Value::Ref(pairs.a[0]));
    std::printf("       back-reference resolves: %s\n", linked ? "yes" : "NO");
  }
  std::printf("\n1:1 over-connection is rejected by the system:\n");
  Pairs pairs = Populate(db.get(), "ai", "bi", 2);
  Require(access.Connect(pairs.a[0], 2, pairs.b[0]), "first");
  const auto st = access.Connect(pairs.a[1], 2, pairs.b[0]);
  std::printf("  second owner for the same 1:1 partner -> %s\n",
              st.ToString().c_str());
}

template <const char* kAType, const char* kBType>
void BM_Connect(benchmark::State& state) {
  auto db = OpenDb();
  CreateSchema(db.get());
  Pairs pairs = Populate(db.get(), kAType, kBType, kPairs);
  int i = 0;
  for (auto _ : state) {
    const int k = i++ % kPairs;
    Require(db->access().Connect(pairs.a[k], 2, pairs.b[k]), "connect");
    Require(db->access().Disconnect(pairs.a[k], 2, pairs.b[k]), "disconnect");
  }
  state.counters["backrefs"] = benchmark::Counter(
      static_cast<double>(db->access().stats().backref_maintenance.load()),
      benchmark::Counter::kAvgIterations);
}

char kAi[] = "ai";
char kBi[] = "bi";
char kAn[] = "an";
char kBn[] = "bn";
char kAm[] = "am";
char kBm[] = "bm";
BENCHMARK(BM_Connect<kAi, kBi>)->Name("BM_ConnectDisconnect_1to1");
BENCHMARK(BM_Connect<kAn, kBn>)->Name("BM_ConnectDisconnect_1toN");
BENCHMARK(BM_Connect<kAm, kBm>)->Name("BM_ConnectDisconnect_NtoM");

void BM_NtoMFanout(benchmark::State& state) {
  // Cost of connecting one A to `fanout` B atoms (set growth).
  const int fanout = static_cast<int>(state.range(0));
  auto db = OpenDb();
  CreateSchema(db.get());
  Pairs pairs = Populate(db.get(), "am", "bm", fanout + 1);
  for (auto _ : state) {
    state.PauseTiming();
    auto fresh = db->access().InsertAtom(
        db->access().catalog().FindAtomType("am")->id,
        {AttrValue{1, Value::Int(999)}});
    state.ResumeTiming();
    for (int i = 0; i < fanout; ++i) {
      Require(db->access().Connect(*fresh, 2, pairs.b[i]), "connect");
    }
    state.PauseTiming();
    Require(db->access().DeleteAtom(*fresh), "cleanup");
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_NtoMFanout)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
