// Experiment E10 (paper §3.3): one database buffer for five page sizes.
//
// Claim: static partitioning of the buffer (one sub-pool per page size) "is
// not very flexible when reference patterns change"; PRIMA instead modifies
// LRU to handle different page sizes within one buffer. We regenerate the
// comparison: hit ratios of both policies under a workload whose page-size
// mix shifts over time.

#include "bench_common.h"
#include "util/random.h"

namespace prima::bench {
namespace {

using storage::BufferManager;
using storage::BufferPolicy;
using storage::MemoryBlockDevice;
using storage::PageId;

constexpr size_t kBudget = 96u << 10;  // 96 KiB buffer
constexpr uint32_t kSmall = 512;
constexpr uint32_t kLarge = 8192;
constexpr uint32_t kPagesPerSegment = 256;

/// Phase 1 references mostly small pages, phase 2 mostly large pages — the
/// shifting reference pattern of the paper's argument.
double RunPhases(BufferPolicy policy, int phases, double* final_ratio) {
  auto device = std::make_unique<MemoryBlockDevice>();
  Require(device->Create(1, kSmall), "seg1");
  Require(device->Create(2, kLarge), "seg2");
  BufferManager buffer(device.get(), kBudget, policy);
  util::Random rng(42);

  for (int phase = 0; phase < phases; ++phase) {
    const bool small_heavy = phase % 2 == 0;
    for (int i = 0; i < 4000; ++i) {
      const bool small = rng.Bernoulli(small_heavy ? 0.95 : 0.05);
      const PageId id{small ? 1u : 2u,
                      static_cast<uint32_t>(rng.Skewed(kPagesPerSegment))};
      auto frame = buffer.Fix(id, small ? kSmall : kLarge, false);
      if (frame.ok()) buffer.Unfix(*frame);
    }
  }
  *final_ratio = buffer.stats().HitRatio();
  return *final_ratio;
}

void Report() {
  PrintHeader("E10 / §3.3 — size-aware LRU vs statically partitioned buffer",
              "Claim: a static partition wastes its idle sub-pools when the "
              "reference pattern shifts between page sizes; the modified LRU "
              "adapts the whole budget.");

  double unified = 0, partitioned = 0;
  RunPhases(BufferPolicy::kUnifiedLru, 6, &unified);
  RunPhases(BufferPolicy::kStaticPartitioned, 6, &partitioned);
  std::printf("%-34s %12s\n", "policy", "hit ratio");
  std::printf("%-34s %11.1f%%\n", "modified LRU (one buffer)", 100 * unified);
  std::printf("%-34s %11.1f%%\n", "static partition (size classes)",
              100 * partitioned);
  std::printf("\nadvantage of the adaptive policy: %+.1f points "
              "(paper: partitioning 'is not very flexible when reference "
              "patterns change')\n",
              100 * (unified - partitioned));

  // Second shape: with a stable pattern the gap narrows.
  double u1 = 0, p1 = 0;
  RunPhases(BufferPolicy::kUnifiedLru, 1, &u1);
  RunPhases(BufferPolicy::kStaticPartitioned, 1, &p1);
  std::printf("stable (single-phase) pattern:   unified %.1f%%  "
              "partitioned %.1f%%\n",
              100 * u1, 100 * p1);
}

void BM_BufferFix(benchmark::State& state) {
  const auto policy = static_cast<BufferPolicy>(state.range(0));
  auto device = std::make_unique<MemoryBlockDevice>();
  Require(device->Create(1, kSmall), "seg1");
  Require(device->Create(2, kLarge), "seg2");
  BufferManager buffer(device.get(), kBudget, policy);
  util::Random rng(7);
  int i = 0;
  for (auto _ : state) {
    const bool small = (i++ % 3) != 0;
    const PageId id{small ? 1u : 2u,
                    static_cast<uint32_t>(rng.Skewed(kPagesPerSegment))};
    auto frame = buffer.Fix(id, small ? kSmall : kLarge, false);
    if (frame.ok()) buffer.Unfix(*frame);
  }
  state.counters["hit_ratio"] = buffer.stats().HitRatio();
}
BENCHMARK(BM_BufferFix)
    ->Arg(static_cast<int>(BufferPolicy::kUnifiedLru))
    ->Name("BM_BufferFix_UnifiedLru");
BENCHMARK(BM_BufferFix)
    ->Arg(static_cast<int>(BufferPolicy::kStaticPartitioned))
    ->Name("BM_BufferFix_StaticPartitioned");

void BM_EvictionStorm(benchmark::State& state) {
  // Worst case for the size-aware policy: alternating large/small fixes
  // force multi-victim evictions.
  auto device = std::make_unique<MemoryBlockDevice>();
  Require(device->Create(1, kSmall), "seg1");
  Require(device->Create(2, kLarge), "seg2");
  BufferManager buffer(device.get(), 32u << 10, BufferPolicy::kUnifiedLru);
  uint32_t p = 0;
  for (auto _ : state) {
    const bool small = (p % 17) != 0;
    const PageId id{small ? 1u : 2u, p++ % 512};
    auto frame = buffer.Fix(id, small ? kSmall : kLarge, false);
    if (frame.ok()) buffer.Unfix(*frame);
  }
  state.counters["evictions_per_fix"] = benchmark::Counter(
      static_cast<double>(buffer.stats().evictions.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_EvictionStorm);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::Report();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
