// Session & prepared-statement benchmarks: what the §3.1 separation of
// preparation from execution buys.
//
//   - prepared vs re-parse throughput: the same SELECT executed N times as
//     one-shot text (parse + semantic analysis + plan every call) vs as a
//     bound PreparedStatement (parse/plan once, bind per call);
//   - cursor first-molecule latency: time until the FIRST molecule of a
//     large molecule set is available via MoleculeCursor::Next() vs the
//     fully materialized Query() path, plus the cost of an early-exit
//     consumer that only wants a few molecules.
//
//   $ ./bench_statements

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/session.h"

namespace prima::bench {
namespace {

using access::Value;

// ---------------------------------------------------------------------------
// Report: prepared vs re-parse, cursor vs materialize
// ---------------------------------------------------------------------------

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void ReportStatements() {
  PrintHeader(
      "session API — prepared statements & streaming cursors",
      "preparation (parse + analyze + plan) runs once per statement, not "
      "once per execution; cursors bound first-molecule latency by ONE "
      "assembly instead of the whole molecule set");

  // A moderately deep BREP store: 60 solids, each a multi-component
  // molecule, so assembly cost dominates parse cost and both effects show.
  auto db = OpenBrepDb(/*n=*/60, /*base=*/1000);
  auto session = db->OpenSession();

  constexpr int kExecutions = 2000;
  const std::string text =
      "SELECT ALL FROM solid WHERE solid_no = 1013";

  {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kExecutions; ++i) {
      auto r = session->Execute(text);
      Require(r.status(), "one-shot execute");
    }
    const double reparse = SecondsSince(start);

    auto stmt = RequireR(
        session->Prepare("SELECT ALL FROM solid WHERE solid_no = ?"),
        "prepare");
    Require(stmt.Bind(0, Value::Int(1013)), "bind");
    const auto pstart = std::chrono::steady_clock::now();
    for (int i = 0; i < kExecutions; ++i) {
      auto r = stmt.Execute();
      Require(r.status(), "prepared execute");
    }
    const double prepared = SecondsSince(pstart);

    std::printf(
        "eq-key SELECT x%d          one-shot %8.1f stmt/s   prepared %8.1f "
        "stmt/s   speedup %.2fx   (plans computed: %llu)\n",
        kExecutions, kExecutions / reparse, kExecutions / prepared,
        reparse / prepared,
        (unsigned long long)stmt.plans_computed());
  }

  // Cursor latency: a four-component molecule set over every solid.
  const std::string big =
      "SELECT ALL FROM brep-face-edge-point";
  {
    const auto mstart = std::chrono::steady_clock::now();
    auto all = RequireR(session->Execute(big), "materialize");
    const double materialize = SecondsSince(mstart);
    const size_t total = all.molecules.size();

    const auto cstart = std::chrono::steady_clock::now();
    auto cursor = RequireR(session->Query(big), "cursor");
    auto first = RequireR(cursor.Next(), "first molecule");
    Require(first.has_value() ? util::Status::Ok()
                              : util::Status::NotFound("empty cursor"),
            "first molecule");
    const double first_latency = SecondsSince(cstart);
    // Early-exit consumer: drain only 5 of the molecules, then close.
    for (int i = 0; i < 4; ++i) {
      auto m = RequireR(cursor.Next(), "next");
      benchmark::DoNotOptimize(m);
    }
    cursor.Close();
    const double five = SecondsSince(cstart);

    std::printf(
        "cursor over %4zu molecules  first-molecule %8.0f us   five+close "
        "%8.0f us   full materialization %8.0f us   (%.1fx to first row)\n",
        total, first_latency * 1e6, five * 1e6, materialize * 1e6,
        materialize / first_latency);
  }
}

// ---------------------------------------------------------------------------
// Report: kernel telemetry — EXPLAIN ANALYZE + the metrics page
// ---------------------------------------------------------------------------

void ReportTelemetry() {
  PrintHeader(
      "kernel telemetry — EXPLAIN ANALYZE & the metrics page",
      "per-statement span trees on demand, latency histograms always: one "
      "EXPLAIN ANALYZE plan and the statement-latency summary below come "
      "straight from the kernel, no external profiler attached");

  auto db = OpenBrepDb(/*n=*/60, /*base=*/1000);
  auto session = db->OpenSession();

  // Warm the statement cache and the latency histogram.
  for (int i = 0; i < 200; ++i) {
    Require(session->Execute("SELECT ALL FROM solid WHERE solid_no = 1013")
                .status(),
            "warm select");
  }

  auto plan = RequireR(
      session->Execute(
          "EXPLAIN ANALYZE SELECT ALL FROM solid WHERE solid_no = 1013"),
      "explain analyze");
  std::printf("%s\n", plan.text.c_str());

  const auto snap = db->stats();
  std::printf("statement latency (us): p50 %llu  p95 %llu  p99 %llu  over "
              "%llu statements (%llu traced)\n\n",
              (unsigned long long)snap.statement_us.p50(),
              (unsigned long long)snap.statement_us.p95(),
              (unsigned long long)snap.statement_us.p99(),
              (unsigned long long)snap.statement_us.count,
              (unsigned long long)snap.traced_statements);

  // A short excerpt of the Prometheus-style page — the statement metrics.
  const std::string page = db->MetricsText();
  size_t printed = 0;
  size_t pos = 0;
  while (pos < page.size() && printed < 12) {
    const size_t eol = page.find('\n', pos);
    const std::string line = page.substr(pos, eol - pos);
    if (line.find("prima_statement_us") != std::string::npos ||
        line.find("prima_buffer_") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++printed;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Micro-benchmarks
// ---------------------------------------------------------------------------

void BM_OneShotExecute(benchmark::State& state) {
  auto db = OpenBrepDb(/*n=*/20, /*base=*/1000);
  auto session = db->OpenSession();
  for (auto _ : state) {
    auto r = session->Execute("SELECT ALL FROM solid WHERE solid_no = 1007");
    Require(r.status(), "execute");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OneShotExecute);

void BM_PreparedExecute(benchmark::State& state) {
  auto db = OpenBrepDb(/*n=*/20, /*base=*/1000);
  auto session = db->OpenSession();
  auto stmt = RequireR(
      session->Prepare("SELECT ALL FROM solid WHERE solid_no = ?"),
      "prepare");
  Require(stmt.Bind(0, Value::Int(1007)), "bind");
  for (auto _ : state) {
    auto r = stmt.Execute();
    Require(r.status(), "execute");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedExecute);

void BM_PreparedInsertAutoCommit(benchmark::State& state) {
  auto db = OpenDb();
  auto session = db->OpenSession();
  Require(session
              ->Execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                        "num: INTEGER, name: CHAR_VAR)")
              .status(),
          "schema");
  auto stmt = RequireR(
      session->Prepare("INSERT item (num = ?, name = :n)"), "prepare");
  int64_t i = 0;
  for (auto _ : state) {
    Require(stmt.Bind(0, Value::Int(++i)), "bind");
    Require(stmt.Bind("n", Value::String("x")), "bind");
    auto r = stmt.Execute();
    Require(r.status(), "insert");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreparedInsertAutoCommit);

void BM_CursorFirstMolecule(benchmark::State& state) {
  auto db = OpenBrepDb(/*n=*/static_cast<int>(state.range(0)),
                       /*base=*/1000);
  auto session = db->OpenSession();
  for (auto _ : state) {
    auto cursor =
        RequireR(session->Query("SELECT ALL FROM brep-face-edge-point"),
                 "cursor");
    auto first = RequireR(cursor.Next(), "next");
    benchmark::DoNotOptimize(first);
    cursor.Close();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CursorFirstMolecule)->Arg(16)->Arg(64);

void BM_MaterializeAll(benchmark::State& state) {
  auto db = OpenBrepDb(/*n=*/static_cast<int>(state.range(0)),
                       /*base=*/1000);
  auto session = db->OpenSession();
  for (auto _ : state) {
    auto set = RequireR(session->Execute("SELECT ALL FROM brep-face-edge-point"),
                        "query");
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaterializeAll)->Arg(16)->Arg(64);

}  // namespace
}  // namespace prima::bench

int main(int argc, char** argv) {
  prima::bench::ReportStatements();
  prima::bench::ReportTelemetry();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
